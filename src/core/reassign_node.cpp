#include "core/reassign_node.h"

#include <cassert>
#include <memory>
#include <stdexcept>

#include "common/logging.h"
#include "runtime/msg_pool.h"

namespace wrs {

ReassignNode::ReassignNode(Env& env, ProcessId self,
                           const SystemConfig& config)
    : env_(env),
      self_(self),
      config_(config),
      servers_(config.servers()),
      floor_(config.floor()),
      changes_(ChangeSet::initial(config.initial_weights)),
      rb_(env, self,
          [this](ProcessId origin, const Message& payload) {
            on_rb_deliver(origin, payload);
          },
          config.servers()),
      read_engine_(env, self, config),
      refresh_hook_([](std::function<void()> done) { done(); }) {
  // The paper's model assumes RP-Integrity at t=0. Starting below the
  // floor voids Lemma 1 (the floor would no longer imply Property 1
  // after transfers), so flag it loudly; deployments that never transfer
  // (static WMQS baselines reusing this node) may ignore the warning.
  if (!config_.satisfies_rp_floor()) {
    WRS_WARN("ReassignNode " << process_name(self)
                             << ": initial weights violate the RP-Integrity "
                                "floor "
                             << floor_.str()
                             << "; transfers may not preserve Property 1");
  }
}

void ReassignNode::transfer(ProcessId to, const Weight& delta,
                            TransferCallback cb) {
  if (pending_transfer_.has_value()) {
    throw std::logic_error(
        "ReassignNode: processes are sequential — previous transfer still "
        "in flight");
  }
  if (!(delta.is_positive())) {
    throw std::invalid_argument("ReassignNode::transfer: delta must be > 0");
  }
  if (to == self_ || to < config_.base || to >= config_.base + config_.n) {
    throw std::invalid_argument(
        "ReassignNode::transfer: destination " + process_name(to) +
        " outside this group's server range [" +
        std::to_string(config_.base) + ", " +
        std::to_string(config_.base + config_.n) + ")");
  }

  std::uint64_t counter = lc_++;
  // Algorithm 4 line 12: C2 — remain strictly above the floor.
  if (weight() > delta + floor_) {
    Change neg(self_, counter, self_, -delta);
    Change pos(self_, counter, to, delta);
    changes_.add(neg);
    changes_.add(pos);
    if (on_changes_grown_) on_changes_grown_();
    PendingTransfer p;
    p.counter = counter;
    p.neg = neg;
    p.cb = std::move(cb);
    pending_transfer_ = std::move(p);
    rb_.broadcast(make_msg<TransferMsg>(neg, pos, config_.shard));
    // Completion once n-f-1 other servers acked (line 15). With n-f-1 == 0
    // (n = f+1 is excluded by SystemConfig, so this cannot happen) the
    // transfer would complete immediately.
    if (config_.n - config_.f - 1 == 0) complete_transfer();
  } else {
    // Null transfer: <Complete, <s, lc, s, 0>> with nothing stored.
    TransferOutcome out;
    out.effective = false;
    out.completion_change = Change(self_, counter, self_, Weight(0));
    cb(out);
  }
}

void ReassignNode::read_changes(ProcessId target, ReadChangesCallback cb) {
  read_engine_.start(target, std::move(cb));
}

void ReassignNode::on_message(ProcessId from, const Message& msg) {
  if (!handle(from, msg)) {
    WRS_DEBUG("ReassignNode " << process_name(self_)
                              << ": unhandled message " << msg.type_name());
  }
}

bool ReassignNode::handle(ProcessId from, const Message& msg) {
  // Reliable-broadcast traffic (T messages travel inside).
  if (rb_.handle(from, msg)) return true;
  // Our own read_changes invocations.
  if (read_engine_.handle(from, msg)) return true;

  if (const auto* rc = msg_cast<RcReq>(msg)) {
    if (misrouted(rc->shard())) return true;
    // Algorithm 3 line 12-13: reply with the changes stored for target.
    env_.send(self_, from,
              make_msg<RcAck>(rc->op_id(),
                                      changes_.subset_for(rc->target())));
    return true;
  }
  if (const auto* wc = msg_cast<WcReq>(msg)) {
    if (misrouted(wc->shard())) return true;
    // Algorithm 3 line 14-15: store, then acknowledge.
    std::uint64_t op_id = wc->op_id();
    write_changes(wc->changes(), [this, from, op_id] {
      env_.send(self_, from, make_msg<WcAck>(op_id));
    });
    return true;
  }
  if (const auto* sync = msg_cast<SyncMsg>(msg)) {
    if (misrouted(sync->shard())) return true;
    std::optional<std::uint64_t> pending = sync->pending_counter();
    write_changes(sync->changes(), [this, from, pending] {
      // Re-ack the sender's in-flight pair even when it was acked before:
      // the original T_Ack may have been dropped by the fault plane.
      // Duplicate T_Acks collapse in the issuer's ack set.
      if (pending.has_value() && from != self_ &&
          changes_.count_pair(from, *pending) >= 2) {
        env_.send(self_, from,
                  make_msg<TAck>(*pending, config_.shard));
      }
    });
    return true;
  }
  if (const auto* ack = msg_cast<TAck>(msg)) {
    if (misrouted(ack->shard())) return true;
    if (pending_transfer_.has_value() &&
        pending_transfer_->counter == ack->counter() && from != self_) {
      pending_transfer_->acks.insert(from);
      if (pending_transfer_->acks.size() >= config_.n - config_.f - 1) {
        complete_transfer();
      }
    }
    return true;
  }
  return false;
}

void ReassignNode::enable_sync(TimeNs period) {
  sync_period_ = period;
  ++sync_epoch_;  // cancel any round scheduled under the old setting
  if (sync_period_ > 0) schedule_sync();
}

void ReassignNode::schedule_sync() {
  std::uint64_t epoch = sync_epoch_;
  env_.schedule(self_, sync_period_, [this, epoch] {
    if (epoch != sync_epoch_ || sync_period_ <= 0) return;
    sync_now();
    schedule_sync();
  });
}

void ReassignNode::sync_now() {
  std::optional<std::uint64_t> pending;
  if (pending_transfer_.has_value()) pending = pending_transfer_->counter;
  env_.broadcast_to_group(
      self_, servers_,
      make_msg<SyncMsg>(changes_, pending, config_.shard));
}

void ReassignNode::complete_transfer() {
  assert(pending_transfer_.has_value());
  TransferOutcome out;
  out.effective = true;
  out.completion_change = pending_transfer_->neg;
  auto cb = std::move(pending_transfer_->cb);
  pending_transfer_.reset();
  cb(out);
}

void ReassignNode::on_rb_deliver(ProcessId /*origin*/,
                                 const Message& payload) {
  const auto* t = msg_cast<TransferMsg>(payload);
  if (t == nullptr) {
    WRS_WARN("ReassignNode " << process_name(self_)
                             << ": unexpected RB payload "
                             << payload.type_name());
    return;
  }
  if (misrouted(t->shard())) return;
  ChangeSet pair;
  pair.add(t->neg());
  pair.add(t->pos());
  write_changes(pair, [] {});
}

void ReassignNode::write_changes(const ChangeSet& incoming,
                                 std::function<void()> done) {
  std::vector<Change> missing = changes_.missing_from(incoming);
  // Drop the ones already being applied (refresh hook in flight).
  std::erase_if(missing, [this](const Change& c) {
    return applying_.count(c.id) != 0;
  });
  if (missing.empty()) {
    done();
    return;
  }
  auto remaining = std::make_shared<std::size_t>(missing.size());
  auto all_done = std::make_shared<std::function<void()>>(std::move(done));
  for (const Change& c : missing) {
    auto finish_one = [this, remaining, all_done] {
      if (--*remaining == 0) (*all_done)();
    };
    const bool is_gain_for_self =
        c.target() == self_ && c.issuer() != self_ && c.delta.is_positive();
    if (is_gain_for_self) {
      // Algorithm 4 lines 8-9: refresh the local register (via the hook)
      // before the gain becomes visible.
      applying_.insert(c.id);
      Change copy = c;
      refresh_hook_([this, copy, finish_one] {
        applying_.erase(copy.id);
        apply_change(copy);
        finish_one();
      });
    } else {
      apply_change(c);
      finish_one();
    }
  }
}

void ReassignNode::apply_change(const Change& c) {
  if (!changes_.add(c)) return;  // lost a race with another path
  if (on_changes_grown_) on_changes_grown_();
  maybe_ack_issuer(c.issuer(), c.counter());
}

void ReassignNode::maybe_ack_issuer(ProcessId issuer, std::uint64_t counter) {
  if (issuer == self_) return;  // the issuer does not ack itself
  if (counter == kInitialChangeCounter) return;  // initial changes
  if (changes_.count_pair(issuer, counter) < 2) return;  // wait for pair
  auto key = std::make_pair(issuer, counter);
  if (!acked_pairs_.insert(key).second) return;  // already acked
  env_.send(self_, issuer, make_msg<TAck>(counter, config_.shard));
}

}  // namespace wrs
