// Wire messages of the restricted pairwise weight reassignment protocol
// (Algorithms 3 and 4).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/change_set.h"
#include "runtime/message.h"

namespace wrs {

/// Requests and server-to-server traffic carry the shard id of their
/// replica group; a server drops reassignment traffic addressed to a
/// different group (see abd_messages.h for the sharding rationale).

/// <RC, s, g> — phase 1 of read_changes: asks a server for the changes it
/// stores for target `s`. op_id correlates responses with invocations.
class RcReq : public MessageBase<RcReq> {
 public:
  RcReq(std::uint64_t op_id, ProcessId target, ShardId shard = 0)
      : op_id_(op_id), target_(target), shard_(shard) {}
  std::uint64_t op_id() const { return op_id_; }
  ProcessId target() const { return target_; }
  ShardId shard() const { return shard_; }
  std::string type_name() const override { return "RC"; }
  std::size_t wire_size() const override { return kHeaderBytes + 16; }

 private:
  std::uint64_t op_id_;
  ProcessId target_;
  ShardId shard_;
};

/// <RC_Ack, C_s> — a server's stored changes for the requested target.
class RcAck : public MessageBase<RcAck> {
 public:
  RcAck(std::uint64_t op_id, ChangeSet changes)
      : op_id_(op_id), changes_(std::move(changes)) {}
  std::uint64_t op_id() const { return op_id_; }
  const ChangeSet& changes() const { return changes_; }
  std::string type_name() const override { return "RC_ACK"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 8 + changes_.wire_size();
  }

 private:
  std::uint64_t op_id_;
  ChangeSet changes_;
};

/// <WC, C, g> — phase 2 of read_changes: write back the unioned set so
/// that n-f servers store it before the invocation returns.
class WcReq : public MessageBase<WcReq> {
 public:
  WcReq(std::uint64_t op_id, ChangeSet changes, ShardId shard = 0)
      : op_id_(op_id), changes_(std::move(changes)), shard_(shard) {}
  std::uint64_t op_id() const { return op_id_; }
  const ChangeSet& changes() const { return changes_; }
  ShardId shard() const { return shard_; }
  std::string type_name() const override { return "WC"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 12 + changes_.wire_size();
  }

 private:
  std::uint64_t op_id_;
  ChangeSet changes_;
  ShardId shard_;
};

/// <WC_Ack>.
class WcAck : public MessageBase<WcAck> {
 public:
  explicit WcAck(std::uint64_t op_id) : op_id_(op_id) {}
  std::uint64_t op_id() const { return op_id_; }
  std::string type_name() const override { return "WC_ACK"; }
  std::size_t wire_size() const override { return kHeaderBytes + 8; }

 private:
  std::uint64_t op_id_;
};

/// <T, c, c', g> — the transfer announcement, reliably broadcast by the
/// issuer (Algorithm 4 line 14). Carries both changes of the pair.
class TransferMsg : public MessageBase<TransferMsg> {
 public:
  TransferMsg(Change neg, Change pos, ShardId shard = 0)
      : neg_(std::move(neg)), pos_(std::move(pos)), shard_(shard) {}
  const Change& neg() const { return neg_; }
  const Change& pos() const { return pos_; }
  ShardId shard() const { return shard_; }
  std::string type_name() const override { return "T"; }
  std::size_t wire_size() const override { return kHeaderBytes + 4 + 2 * 32; }

 private:
  Change neg_;
  Change pos_;
  ShardId shard_;
};

/// <SYNC, C, lc?> — anti-entropy round (not in the paper, which assumes
/// reliable links): a server's periodic broadcast of its full change set,
/// used to restore convergence and transfer completion when the
/// fault-injection plane loses T / T_Ack traffic. `pending_counter`
/// carries the sender's in-flight transfer counter (if any) so receivers
/// that already stored the pair can RE-acknowledge — the original T_Ack
/// may have been dropped. Off unless ReassignNode::enable_sync is called.
class SyncMsg : public MessageBase<SyncMsg> {
 public:
  SyncMsg(ChangeSet changes, std::optional<std::uint64_t> pending_counter,
          ShardId shard = 0)
      : changes_(std::move(changes)),
        pending_counter_(pending_counter),
        shard_(shard) {}
  const ChangeSet& changes() const { return changes_; }
  const std::optional<std::uint64_t>& pending_counter() const {
    return pending_counter_;
  }
  ShardId shard() const { return shard_; }
  std::string type_name() const override { return "SYNC"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 13 + changes_.wire_size();
  }

 private:
  ChangeSet changes_;
  std::optional<std::uint64_t> pending_counter_;
  ShardId shard_;
};

/// <T_Ack, lc, g> — acknowledgment that a server stored both changes of
/// the transfer identified by (issuer, counter).
class TAck : public MessageBase<TAck> {
 public:
  explicit TAck(std::uint64_t counter, ShardId shard = 0)
      : counter_(counter), shard_(shard) {}
  std::uint64_t counter() const { return counter_; }
  ShardId shard() const { return shard_; }
  std::string type_name() const override { return "T_ACK"; }
  std::size_t wire_size() const override { return kHeaderBytes + 12; }

 private:
  std::uint64_t counter_;
  ShardId shard_;
};

}  // namespace wrs
