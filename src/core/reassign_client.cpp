#include "core/reassign_client.h"

#include <memory>
#include "runtime/msg_pool.h"

namespace wrs {

void ReassignClient::read_all_weights(
    const SystemConfig& config, std::function<void(const WeightMap&)> cb) {
  auto servers = config.servers();
  auto acc = make_pooled<ChangeSet>();
  auto remaining = std::make_shared<std::size_t>(servers.size());
  auto done = std::make_shared<std::function<void(const WeightMap&)>>(
      std::move(cb));
  for (ProcessId s : servers) {
    engine_.start(s, [servers, acc, remaining, done](const ChangeSet& cs) {
      acc->join(cs);
      if (--*remaining == 0) {
        (*done)(acc->to_weight_map(servers));
      }
    });
  }
}

}  // namespace wrs
