// Exact rational arithmetic for server weights.
//
// The paper models weights as real numbers and states Integrity properties
// with strict inequalities against quantities such as W_{S,0} / (2(n-f)).
// Floating point would make those boundary comparisons unreliable (the
// reductions in Algorithms 1-2 sit *exactly* on the boundary), so weights
// are exact rationals: int64 numerator / int64 denominator, always
// normalized (gcd == 1, denominator > 0). Intermediate products use
// __int128; overflow after normalization throws.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>

namespace wrs {

class RationalOverflow : public std::overflow_error {
 public:
  RationalOverflow() : std::overflow_error("wrs::Rational overflow") {}
};

class Rational {
 public:
  constexpr Rational() : num_(0), den_(1) {}
  constexpr Rational(std::int64_t value) : num_(value), den_(1) {}  // NOLINT
  Rational(std::int64_t num, std::int64_t den);

  /// Parses "a/b" or "a" (used by workload config files and tests).
  static Rational parse(const std::string& text);

  /// Nearest rational with denominator `den` (used when converting measured
  /// doubles, e.g. monitoring outputs, into exact weights).
  static Rational from_double(double v, std::int64_t den = 1'000'000);

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }
  std::string str() const;

  bool is_zero() const { return num_ == 0; }
  bool is_negative() const { return num_ < 0; }
  bool is_positive() const { return num_ > 0; }

  Rational operator-() const;
  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  friend Rational operator+(const Rational& a, const Rational& b);
  friend Rational operator-(const Rational& a, const Rational& b);
  friend Rational operator*(const Rational& a, const Rational& b);
  friend Rational operator/(const Rational& a, const Rational& b);

  /// Overflow-checked fast paths: same math as operator+/operator*, but
  /// nullopt instead of a thrown RationalOverflow when the normalized
  /// result does not fit int64. For callers probing many candidate
  /// weights in a tight loop (monitoring policies, quorum sweeps), the
  /// branch is far cheaper than an exception on the failure path.
  static std::optional<Rational> checked_add(const Rational& a,
                                             const Rational& b) noexcept;
  static std::optional<Rational> checked_mul(const Rational& a,
                                             const Rational& b) noexcept;

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a,
                                          const Rational& b);

  friend std::ostream& operator<<(std::ostream& os, const Rational& r);

  /// Absolute value.
  Rational abs() const { return num_ < 0 ? -*this : *this; }

 private:
  // Normalized invariant: den_ > 0, gcd(|num_|, den_) == 1.
  std::int64_t num_;
  std::int64_t den_;
};

/// Weights are exact rationals throughout the library.
using Weight = Rational;

}  // namespace wrs
