// Deterministic random number generation.
//
// Every source of randomness in the library is seeded explicitly so that
// simulator runs, property tests, and benchmark workloads are reproducible
// bit-for-bit. We use SplitMix64 for seeding and xoshiro256** for streams;
// both are tiny, fast, and have well-understood statistical quality.
#pragma once

#include <cstdint>

namespace wrs {

/// SplitMix64 step; used to derive independent sub-seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator so it plugs into
/// <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x2545F4914F6CDD1Dull) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Derives an independent generator (e.g. one per process).
  Rng split() {
    std::uint64_t seed = (*this)();
    return Rng(seed);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace wrs
