#include "common/rational.h"

#include <cmath>
#include <cstdlib>
#include <numeric>
#include <ostream>

namespace wrs {

namespace {

using Int128 = __int128;

std::int64_t checked_narrow(Int128 v) {
  if (v > std::numeric_limits<std::int64_t>::max() ||
      v < std::numeric_limits<std::int64_t>::min()) {
    throw RationalOverflow();
  }
  return static_cast<std::int64_t>(v);
}

Int128 abs128(Int128 v) { return v < 0 ? -v : v; }

Int128 gcd128(Int128 a, Int128 b) {
  a = abs128(a);
  b = abs128(b);
  while (b != 0) {
    Int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

Rational::Rational(std::int64_t num, std::int64_t den) {
  if (den == 0) throw std::invalid_argument("wrs::Rational: zero denominator");
  Int128 n = num;
  Int128 d = den;
  if (d < 0) {
    n = -n;
    d = -d;
  }
  Int128 g = gcd128(n, d);
  if (g > 1) {
    n /= g;
    d /= g;
  }
  num_ = checked_narrow(n);
  den_ = checked_narrow(d);
}

Rational Rational::parse(const std::string& text) {
  auto slash = text.find('/');
  if (slash == std::string::npos) {
    return Rational(std::stoll(text), 1);
  }
  return Rational(std::stoll(text.substr(0, slash)),
                  std::stoll(text.substr(slash + 1)));
}

Rational Rational::from_double(double v, std::int64_t den) {
  if (!std::isfinite(v)) {
    throw std::invalid_argument("wrs::Rational::from_double: non-finite");
  }
  double scaled = v * static_cast<double>(den);
  if (std::fabs(scaled) >
      static_cast<double>(std::numeric_limits<std::int64_t>::max()) / 2) {
    throw RationalOverflow();
  }
  return Rational(static_cast<std::int64_t>(std::llround(scaled)), den);
}

std::string Rational::str() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = checked_narrow(-Int128{num_});
  r.den_ = den_;
  return r;
}

namespace {

Rational make_normalized(Int128 n, Int128 d) {
  // d > 0 guaranteed by callers.
  Int128 g = gcd128(n, d);
  if (g > 1) {
    n /= g;
    d /= g;
  }
  return Rational(checked_narrow(n), checked_narrow(d));
}

}  // namespace

namespace {

/// Non-throwing variant of make_normalized: d > 0 guaranteed by callers.
std::optional<Rational> make_normalized_checked(Int128 n, Int128 d) noexcept {
  Int128 g = gcd128(n, d);
  if (g > 1) {
    n /= g;
    d /= g;
  }
  if (n > std::numeric_limits<std::int64_t>::max() ||
      n < std::numeric_limits<std::int64_t>::min() ||
      d > std::numeric_limits<std::int64_t>::max()) {
    return std::nullopt;
  }
  // num/den are coprime and den > 0, so the constructor cannot throw.
  return Rational(static_cast<std::int64_t>(n), static_cast<std::int64_t>(d));
}

}  // namespace

std::optional<Rational> Rational::checked_add(const Rational& a,
                                              const Rational& b) noexcept {
  Int128 n = Int128{a.num_} * b.den_ + Int128{b.num_} * a.den_;
  Int128 d = Int128{a.den_} * b.den_;
  return make_normalized_checked(n, d);
}

std::optional<Rational> Rational::checked_mul(const Rational& a,
                                              const Rational& b) noexcept {
  Int128 n = Int128{a.num_} * b.num_;
  Int128 d = Int128{a.den_} * b.den_;
  return make_normalized_checked(n, d);
}

Rational operator+(const Rational& a, const Rational& b) {
  Int128 n = Int128{a.num_} * b.den_ + Int128{b.num_} * a.den_;
  Int128 d = Int128{a.den_} * b.den_;
  return make_normalized(n, d);
}

Rational operator-(const Rational& a, const Rational& b) {
  Int128 n = Int128{a.num_} * b.den_ - Int128{b.num_} * a.den_;
  Int128 d = Int128{a.den_} * b.den_;
  return make_normalized(n, d);
}

Rational operator*(const Rational& a, const Rational& b) {
  Int128 n = Int128{a.num_} * b.num_;
  Int128 d = Int128{a.den_} * b.den_;
  return make_normalized(n, d);
}

Rational operator/(const Rational& a, const Rational& b) {
  if (b.num_ == 0) throw std::invalid_argument("wrs::Rational: divide by 0");
  Int128 n = Int128{a.num_} * b.den_;
  Int128 d = Int128{a.den_} * b.num_;
  if (d < 0) {
    n = -n;
    d = -d;
  }
  return make_normalized(n, d);
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  Int128 lhs = Int128{a.num_} * b.den_;
  Int128 rhs = Int128{b.num_} * a.den_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.str();
}

}  // namespace wrs
