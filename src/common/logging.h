// Minimal leveled logging. Disabled by default (benches and tests stay
// quiet); enable with WRS_LOG=debug|info|warn in the environment or
// set_log_level() programmatically. Thread-safe line-at-a-time output.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace wrs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& line);
}

#define WRS_LOG(level, expr)                                    \
  do {                                                          \
    if (static_cast<int>(level) >=                              \
        static_cast<int>(::wrs::log_level())) {                 \
      std::ostringstream wrs_log_os_;                           \
      wrs_log_os_ << expr;                                      \
      ::wrs::detail::log_line(level, wrs_log_os_.str());        \
    }                                                           \
  } while (0)

#define WRS_DEBUG(expr) WRS_LOG(::wrs::LogLevel::kDebug, expr)
#define WRS_INFO(expr) WRS_LOG(::wrs::LogLevel::kInfo, expr)
#define WRS_WARN(expr) WRS_LOG(::wrs::LogLevel::kWarn, expr)
#define WRS_ERROR(expr) WRS_LOG(::wrs::LogLevel::kError, expr)

}  // namespace wrs
