#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace wrs {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("WRS_LOG");
  if (env == nullptr) return LogLevel::kOff;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kOff;
}

std::atomic<int> g_level{static_cast<int>(initial_level())};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?";
  }
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace detail {

void log_line(LogLevel level, const std::string& line) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << level_name(level) << "] " << line << "\n";
}

}  // namespace detail

}  // namespace wrs
