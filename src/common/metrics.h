// Lightweight metrics: counters, latency histograms with percentile
// queries, and time series. All benches and integration tests report
// through these types so output formats stay uniform.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace wrs {

/// Collects scalar samples (latencies in ns, sizes in bytes, ...) and
/// answers summary queries. Storage is the raw sample vector; percentile
/// queries sort a copy lazily.
class Histogram {
 public:
  void add(double sample) {
    samples_.push_back(sample);
    sorted_ = false;
  }
  void add_time(TimeNs t) { add(static_cast<double>(t)); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  /// p in [0, 100]; nearest-rank percentile.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  void clear() {
    samples_.clear();
    sorted_ = false;
  }

  /// Appends every sample of `other` — used to aggregate per-shard or
  /// per-client histograms into one distribution.
  void merge(const Histogram& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

  const std::vector<double>& samples() const { return samples_; }

  /// "n=__ mean=__ p50=__ p99=__ max=__" with values scaled by `scale`
  /// (e.g. 1/1e6 to print milliseconds from nanosecond samples).
  std::string summary(double scale = 1.0) const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_samples_;
  mutable bool sorted_ = false;
};

/// (time, value) series; used for adaptation experiments.
class TimeSeries {
 public:
  void add(TimeNs t, double value) { points_.emplace_back(t, value); }
  const std::vector<std::pair<TimeNs, double>>& points() const {
    return points_;
  }
  bool empty() const { return points_.empty(); }

  /// Mean of values with t in [from, to).
  double mean_in(TimeNs from, TimeNs to) const;

 private:
  std::vector<std::pair<TimeNs, double>> points_;
};

/// Named counters; cheap to copy, merge, and print. Keys are accepted as
/// string_view with a transparent comparator, so bumping or reading an
/// existing counter never builds a temporary std::string (a key is only
/// materialized on first insert). The runtimes no longer count through
/// this type on their hot paths — they use TrafficLedger's pre-interned
/// slots and export a Counters snapshot on demand.
class Counters {
 public:
  void inc(std::string_view name, std::int64_t by = 1) {
    auto it = map_.find(name);
    if (it == map_.end()) {
      map_.emplace(std::string(name), by);
    } else {
      it->second += by;
    }
  }
  std::int64_t get(std::string_view name) const {
    auto it = map_.find(name);
    return it == map_.end() ? 0 : it->second;
  }
  void merge(const Counters& other) {
    for (const auto& [k, v] : other.map_) map_[k] += v;
  }
  /// Folds `other` in under "<prefix><name>" — reports that show
  /// per-shard counters next to the aggregate use e.g. prefix "shard0.".
  void merge_prefixed(const Counters& other, const std::string& prefix) {
    for (const auto& [k, v] : other.map_) map_[prefix + k] += v;
  }
  const std::map<std::string, std::int64_t, std::less<>>& map() const {
    return map_;
  }
  void clear() { map_.clear(); }

 private:
  std::map<std::string, std::int64_t, std::less<>> map_;
};

/// Fixed-width table printer for benchmark outputs ("the rows the paper
/// would report").
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  std::string str() const;
  void print() const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wrs
