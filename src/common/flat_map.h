// Sorted-vector associative container for small hot-path maps.
//
// AbdClient keeps only in-flight state here — a handful to a few
// hundred entries — where std::map's per-node allocation and pointer
// chasing dominate: every insert is a heap alloc, every lookup walks
// red-black tree nodes scattered across the heap. A sorted vector keeps
// entries contiguous (binary-search lookups touch one or two cache
// lines), inserts of monotonically increasing keys (OpIds) degenerate
// to push_back, and capacity is retained across erase so steady state
// does not allocate.
//
// API is the subset of std::map the storage layer uses; iteration order
// is key order, matching std::map, so switching containers cannot
// perturb any iteration-order-dependent schedule (the determinism
// guard in tests/test_sim_env.cpp pins this).
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

namespace wrs {

template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() { return v_.begin(); }
  iterator end() { return v_.end(); }
  const_iterator begin() const { return v_.begin(); }
  const_iterator end() const { return v_.end(); }

  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }
  void clear() { v_.clear(); }

  iterator find(const K& key) {
    auto it = lower(key);
    return it != v_.end() && it->first == key ? it : v_.end();
  }
  const_iterator find(const K& key) const {
    auto it = lower(key);
    return it != v_.end() && it->first == key ? it : v_.end();
  }

  std::size_t count(const K& key) const {
    return find(key) != v_.end() ? 1 : 0;
  }

  V& at(const K& key) {
    auto it = find(key);
    if (it == v_.end()) throw std::out_of_range("FlatMap::at: no such key");
    return it->second;
  }
  const V& at(const K& key) const {
    auto it = find(key);
    if (it == v_.end()) throw std::out_of_range("FlatMap::at: no such key");
    return it->second;
  }

  V& operator[](const K& key) {
    auto it = lower(key);
    if (it == v_.end() || it->first != key) {
      it = v_.emplace(it, std::piecewise_construct, std::forward_as_tuple(key),
                      std::forward_as_tuple());
    }
    return it->second;
  }

  template <typename... Args>
  std::pair<iterator, bool> emplace(const K& key, Args&&... args) {
    auto it = lower(key);
    if (it != v_.end() && it->first == key) return {it, false};
    it = v_.emplace(it, std::piecewise_construct, std::forward_as_tuple(key),
                    std::forward_as_tuple(std::forward<Args>(args)...));
    return {it, true};
  }

  iterator erase(iterator it) { return v_.erase(it); }

  std::size_t erase(const K& key) {
    auto it = find(key);
    if (it == v_.end()) return 0;
    v_.erase(it);
    return 1;
  }

 private:
  iterator lower(const K& key) {
    return std::lower_bound(
        v_.begin(), v_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }
  const_iterator lower(const K& key) const {
    return std::lower_bound(
        v_.begin(), v_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }

  std::vector<value_type> v_;
};

}  // namespace wrs
