// Cache-line geometry for hot-path layout decisions.
//
// The `std::hardware_destructive_interference_size` idiom (SNIPPETS.md
// #1): two objects touched by different threads must not share a cache
// line, or every write by one core invalidates the other's line (false
// sharing). GCC warns on direct use of the constant in headers
// (-Winterference-size, fatal under -Werror) because its value depends
// on -mtune, so the constant is materialized here once, behind the
// pragma, and everything else uses wrs::kCacheLineSize.
#pragma once

#include <cstddef>
#include <new>

namespace wrs {

#if defined(__cpp_lib_hardware_interference_size)
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winterference-size"
#endif
inline constexpr std::size_t kCacheLineSize =
    std::hardware_destructive_interference_size;
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#else
inline constexpr std::size_t kCacheLineSize = 64;
#endif

}  // namespace wrs
