// Basic identifiers and time types shared by every module.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace wrs {

/// Identifies a process (server or client). Servers are numbered
/// 0..n-1; clients use ids >= kClientIdBase so the two ranges never
/// collide (the paper's S and Pi are disjoint sets). Sharded
/// deployments lay server groups out contiguously: shard g of size n
/// owns ids [g*n, (g+1)*n).
using ProcessId = std::uint32_t;

/// Identifies one replica group (shard) in a sharded deployment. The
/// paper's single-group system is shard 0.
using ShardId = std::uint32_t;

inline constexpr ProcessId kClientIdBase = 1u << 16;
inline constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();

/// True iff `id` denotes a server (member of S).
constexpr bool is_server(ProcessId id) { return id < kClientIdBase; }

/// True iff `id` denotes a client (member of Pi).
constexpr bool is_client(ProcessId id) {
  return id >= kClientIdBase && id != kNoProcess;
}

/// Makes the id of the k-th client.
constexpr ProcessId client_id(std::uint32_t k) { return kClientIdBase + k; }

/// Simulated / wall-clock time in nanoseconds. The simulator starts at 0;
/// the thread runtime reports nanoseconds since its construction.
using TimeNs = std::int64_t;

inline constexpr TimeNs kNsPerUs = 1'000;
inline constexpr TimeNs kNsPerMs = 1'000'000;
inline constexpr TimeNs kNsPerSec = 1'000'000'000;

constexpr TimeNs ms(double v) { return static_cast<TimeNs>(v * kNsPerMs); }
constexpr TimeNs us(double v) { return static_cast<TimeNs>(v * kNsPerUs); }
constexpr TimeNs seconds(double v) {
  return static_cast<TimeNs>(v * kNsPerSec);
}
constexpr double to_ms(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerMs);
}

/// The set of server ids {0, 1, ..., n-1}.
std::vector<ProcessId> all_servers(std::uint32_t n);

/// The contiguous server-id range {base, ..., base+n-1} of one group.
std::vector<ProcessId> server_range(ProcessId base, std::uint32_t n);

/// Human-readable process name ("s3" / "c1").
std::string process_name(ProcessId id);

}  // namespace wrs
