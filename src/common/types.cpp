#include "common/types.h"

#include <numeric>

namespace wrs {

std::vector<ProcessId> all_servers(std::uint32_t n) {
  return server_range(0, n);
}

std::vector<ProcessId> server_range(ProcessId base, std::uint32_t n) {
  std::vector<ProcessId> out(n);
  std::iota(out.begin(), out.end(), base);
  return out;
}

std::string process_name(ProcessId id) {
  if (id == kNoProcess) return "none";
  if (is_server(id)) return "s" + std::to_string(id);
  return "c" + std::to_string(id - kClientIdBase);
}

}  // namespace wrs
