#include "common/metrics.h"

#include <cmath>
#include <cstdio>
#include <iostream>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace wrs {

void Histogram::ensure_sorted() const {
  if (sorted_) return;
  sorted_samples_ = samples_;
  std::sort(sorted_samples_.begin(), sorted_samples_.end());
  sorted_ = true;
}

double Histogram::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  return sum() / static_cast<double>(samples_.size());
}

double Histogram::min() const {
  ensure_sorted();
  return sorted_samples_.empty() ? 0.0 : sorted_samples_.front();
}

double Histogram::max() const {
  ensure_sorted();
  return sorted_samples_.empty() ? 0.0 : sorted_samples_.back();
}

double Histogram::stddev() const {
  if (samples_.size() < 2) return 0.0;
  double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Histogram::percentile(double p) const {
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile out of range");
  }
  ensure_sorted();
  if (sorted_samples_.empty()) return 0.0;
  auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted_samples_.size())));
  if (rank == 0) rank = 1;
  return sorted_samples_[rank - 1];
}

std::string Histogram::summary(double scale) const {
  std::ostringstream os;
  os << "n=" << count();
  if (!empty()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  " mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
                  mean() * scale, percentile(50) * scale,
                  percentile(90) * scale, percentile(99) * scale,
                  max() * scale);
    os << buf;
  }
  return os.str();
}

double TimeSeries::mean_in(TimeNs from, TimeNs to) const {
  double acc = 0.0;
  std::size_t n = 0;
  for (const auto& [t, v] : points_) {
    if (t >= from && t < to) {
      acc += v;
      ++n;
    }
  }
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i == 0 ? "| " : " | ");
      os << cells[i] << std::string(widths[i] - cells[i].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::cout << str() << std::flush; }

}  // namespace wrs
