#ifdef __linux__

#include "deploy/node_runner.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "net/socket_addr.h"
#include "runtime/socket_env.h"
#include "shard/shard_map.h"
#include "storage/dynamic_node.h"

namespace wrs::deploy {
namespace {

/// Poll period for the stop flag while the loop thread does the work.
constexpr auto kStopPoll = std::chrono::milliseconds(100);

void write_ready_line(int fd, const std::string& addr) {
  std::string line = addr + "\n";
  const char* p = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // parent gone; keep serving anyway
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

}  // namespace

int run_node(const NodeOptions& opts, const std::atomic<bool>* stop) {
  if (opts.servers_per_shard == 0 || opts.num_shards == 0 ||
      opts.shard >= opts.num_shards) {
    std::fprintf(stderr,
                 "wrs-node: need servers >= 1 and shard < num_shards "
                 "(got shard=%u num_shards=%u servers=%u)\n",
                 opts.shard, opts.num_shards, opts.servers_per_shard);
    return 2;
  }

  ShardMap shard_map = ShardMap::uniform(opts.num_shards,
                                         opts.servers_per_shard, opts.faults);
  const SystemConfig& cfg = shard_map.config(opts.shard);

  SocketEnv::Options env_opts;
  env_opts.listen = net::SocketAddr::parse(opts.listen);
  env_opts.loopback_self = true;  // intra-group quorum traffic goes
                                  // through the kernel too
  env_opts.seed = opts.seed;
  SocketEnv env(env_opts);

  std::vector<std::unique_ptr<DynamicStorageNode>> nodes;
  for (ProcessId s : cfg.servers()) {
    auto node = std::make_unique<DynamicStorageNode>(env, s, cfg);
    if (opts.service_time > 0) node->server().set_service_time(opts.service_time);
    if (opts.retry > 0) node->client().set_retry_interval(opts.retry);
    if (opts.anti_entropy > 0) node->reassign().enable_sync(opts.anti_entropy);
    env.register_process(s, node.get());
    nodes.push_back(std::move(node));
  }

  env.start();
  std::string addr = env.listen_addr().str();
  if (opts.ready_fd >= 0) {
    write_ready_line(opts.ready_fd, addr);
    ::close(opts.ready_fd);
  } else {
    std::printf("%s\n", addr.c_str());
    std::fflush(stdout);
  }

  while (stop == nullptr || !stop->load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(kStopPoll);
  }
  env.stop();
  return 0;
}

// --- flag / config parsing --------------------------------------------------

namespace {

std::uint64_t parse_u64(const std::string& flag, const std::string& v) {
  try {
    std::size_t used = 0;
    std::uint64_t out = std::stoull(v, &used);
    if (used != v.size()) throw std::invalid_argument("");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("wrs-node: bad number for " + flag + ": \"" +
                                v + "\"");
  }
}

/// Applies one key=value pair; `key` uses flag spelling without dashes.
void apply_option(NodeOptions& opts, const std::string& key,
                  const std::string& value) {
  if (key == "shard") {
    opts.shard = static_cast<std::uint32_t>(parse_u64(key, value));
  } else if (key == "num-shards") {
    opts.num_shards = static_cast<std::uint32_t>(parse_u64(key, value));
  } else if (key == "servers") {
    opts.servers_per_shard = static_cast<std::uint32_t>(parse_u64(key, value));
  } else if (key == "faults") {
    opts.faults = static_cast<std::uint32_t>(parse_u64(key, value));
  } else if (key == "listen") {
    opts.listen = value;
  } else if (key == "service-time-us") {
    opts.service_time = us(static_cast<double>(parse_u64(key, value)));
  } else if (key == "retry-ms") {
    opts.retry = ms(static_cast<double>(parse_u64(key, value)));
  } else if (key == "anti-entropy-ms") {
    opts.anti_entropy = ms(static_cast<double>(parse_u64(key, value)));
  } else if (key == "seed") {
    opts.seed = parse_u64(key, value);
  } else if (key == "ready-fd") {
    opts.ready_fd = static_cast<int>(parse_u64(key, value));
  } else {
    throw std::invalid_argument("wrs-node: unknown option \"" + key + "\"");
  }
}

/// Minimal parser for the flat JSON object the --config file holds:
/// string keys, string or integer values, no nesting. Rejects anything
/// it does not understand rather than guessing.
void apply_config_file(NodeOptions& opts, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("wrs-node: cannot read config file " + path);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
  };
  auto fail = [&](const std::string& what) -> std::invalid_argument {
    return std::invalid_argument("wrs-node: config " + path + ": " + what +
                                 " at offset " + std::to_string(i));
  };
  auto parse_string = [&]() -> std::string {
    if (text[i] != '"') throw fail("expected string");
    ++i;
    std::string out;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\') throw fail("escapes unsupported");
      out.push_back(text[i++]);
    }
    if (i >= text.size()) throw fail("unterminated string");
    ++i;
    return out;
  };

  skip_ws();
  if (i >= text.size() || text[i] != '{') throw fail("expected '{'");
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == '}') return;  // empty object
  while (true) {
    skip_ws();
    std::string key = parse_string();
    skip_ws();
    if (i >= text.size() || text[i] != ':') throw fail("expected ':'");
    ++i;
    skip_ws();
    std::string value;
    if (i < text.size() && text[i] == '"') {
      value = parse_string();
    } else {
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])))) {
        value.push_back(text[i++]);
      }
      if (value.empty()) throw fail("expected string or integer value");
    }
    apply_option(opts, key, value);
    skip_ws();
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    if (i < text.size() && text[i] == '}') return;
    throw fail("expected ',' or '}'");
  }
}

}  // namespace

NodeOptions parse_node_flags(int argc, const char* const* argv) {
  NodeOptions opts;
  // First pass: the config file is the base layer.
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg.rfind("--config=", 0) == 0) {
      apply_config_file(opts, arg.substr(9));
    }
  }
  // Second pass: explicit flags override it.
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg.rfind("--config=", 0) == 0) continue;
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("wrs-node: unknown argument \"" + arg +
                                  "\" (flags are --key=value)");
    }
    std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("wrs-node: flag " + arg + " needs =value");
    }
    apply_option(opts, arg.substr(2, eq - 2), arg.substr(eq + 1));
  }
  return opts;
}

// --- fork helpers -----------------------------------------------------------

namespace {

std::atomic<bool> g_child_stop{false};

void child_stop_handler(int) {
  g_child_stop.store(true, std::memory_order_release);
}

}  // namespace

SpawnedNode spawn_node_group(NodeOptions opts) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error(std::string("spawn_node_group: pipe: ") +
                             std::strerror(errno));
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    throw std::runtime_error(std::string("spawn_node_group: fork: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    // Child: become a node process, report ready over the pipe.
    ::close(pipe_fds[0]);
    g_child_stop.store(false);
    struct sigaction sa{};
    sa.sa_handler = child_stop_handler;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    opts.ready_fd = pipe_fds[1];
    int rc = 2;
    try {
      rc = run_node(opts, &g_child_stop);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wrs-node (shard %u): %s\n", opts.shard, e.what());
    }
    ::_exit(rc);  // never unwind into the parent's state
  }
  ::close(pipe_fds[1]);
  // Read the ready line "<addr>\n".
  std::string addr;
  char c;
  while (true) {
    ssize_t n = ::read(pipe_fds[0], &c, 1);
    if (n == 1) {
      if (c == '\n') break;
      addr.push_back(c);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF before newline: child died
  }
  ::close(pipe_fds[0]);
  if (addr.empty()) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    throw std::runtime_error("spawn_node_group: shard " +
                             std::to_string(opts.shard) +
                             " died before reporting ready");
  }
  return SpawnedNode{pid, addr};
}

void stop_node_group(const SpawnedNode& node) {
  if (node.pid <= 0) return;
  ::kill(node.pid, SIGTERM);
  int status = 0;
  ::waitpid(node.pid, &status, 0);
}

void kill_node_group(const SpawnedNode& node) {
  if (node.pid <= 0) return;
  ::kill(node.pid, SIGKILL);
  int status = 0;
  ::waitpid(node.pid, &status, 0);
}

}  // namespace wrs::deploy

#endif  // __linux__
