// The body of a `wrs-node` OS process: one SocketEnv hosting the n
// DynamicStorageNodes of ONE replica group (shard), serving clients and
// sibling processes over real sockets.
//
// Used three ways:
//  * tools/wrs_node.cpp wraps it in a main() with flag/JSON parsing —
//    the manually deployable binary;
//  * spawn_node_group() forks it as a child process (no exec), which is
//    how examples/socket_demo and bench/socket_calibration stand up
//    multi-process deployments programmatically;
//  * tests run it in-process against a stop flag.
//
// The ready protocol: after the listener is bound (resolving port 0 to
// the actual ephemeral port), the runner writes one line
// "<addr>\n" (e.g. "tcp:127.0.0.1:40213\n") to `ready_fd` and closes
// it. Parents read the line to learn where the group landed; anything
// written before the line is not part of the protocol.
//
// IMPORTANT (fork discipline): spawn_node_group must be called BEFORE
// the parent creates any threads of its own (its SocketEnv, a Cluster,
// ...) — fork() only duplicates the calling thread, so forking a
// threaded parent leaves mutexes locked by nobody in the child. Spawn
// every node group first, then build the client side.
#pragma once
#ifdef __linux__

#include <atomic>
#include <cstdint>
#include <string>
#include <sys/types.h>
#include <vector>

#include "common/types.h"

namespace wrs::deploy {

struct NodeOptions {
  std::uint32_t shard = 0;             ///< which replica group this is
  std::uint32_t num_shards = 1;        ///< total groups in the deployment
  std::uint32_t servers_per_shard = 3;
  std::uint32_t faults = 1;            ///< per-group fault threshold f
  std::string listen = "tcp:127.0.0.1:0";
  TimeNs service_time = 0;             ///< modeled per-request service time
  TimeNs retry = 0;                    ///< ABD retransmission interval
  TimeNs anti_entropy = 0;             ///< <SYNC> gossip period
  std::uint64_t seed = 1;
  int ready_fd = -1;                   ///< ready-line fd (-1 = stdout)
};

/// Runs the node until `*stop` becomes true (checked a few times per
/// second; null = run forever). Returns a process exit code.
int run_node(const NodeOptions& opts, const std::atomic<bool>* stop);

/// Parses --shard=, --num-shards=, --servers=, --faults=, --listen=,
/// --service-time-us=, --retry-ms=, --anti-entropy-ms=, --seed=,
/// --ready-fd=, and --config=FILE (a flat JSON object with the same
/// keys, minus leading dashes, e.g. {"shard": 1, "listen": "tcp:..."});
/// explicit flags win over the config file. Throws std::invalid_argument
/// naming any unknown flag or malformed value.
NodeOptions parse_node_flags(int argc, const char* const* argv);

/// One forked node-group process.
struct SpawnedNode {
  pid_t pid = -1;
  std::string addr;  ///< actual listen address from the ready line
};

/// Forks a child running run_node(opts) (no exec) and blocks until its
/// ready line arrives. See the fork discipline note above. Throws
/// std::runtime_error if the child dies before reporting ready.
SpawnedNode spawn_node_group(NodeOptions opts);

/// SIGTERM + waitpid. Safe on an already-dead child.
void stop_node_group(const SpawnedNode& node);

/// SIGKILL + waitpid — the kill-9 liveness scenario.
void kill_node_group(const SpawnedNode& node);

}  // namespace wrs::deploy

#endif  // __linux__
