#include "api/cluster.h"

#include <chrono>
#include <set>
#include <thread>

#ifdef __linux__
#include "net/socket_addr.h"
#include "runtime/socket_env.h"
#endif

namespace wrs {

namespace {

/// Drives the simulator's event loop on the caller's thread until the
/// awaited value arrives (see api/await.h).
class SimPump : public AwaitPump {
 public:
  explicit SimPump(SimEnv* env) : env_(env) {}

  bool pump(const std::function<bool()>& ready, TimeNs timeout) override {
    return env_->run_until_pred(ready, env_->now() + timeout);
  }

 private:
  SimEnv* env_;
};

}  // namespace

// --- ClusterBuilder ---------------------------------------------------------

ClusterBuilder& ClusterBuilder::latency(std::shared_ptr<LatencyModel> model) {
  latency_ = std::move(model);
  return *this;
}

ClusterBuilder& ClusterBuilder::uniform_latency(TimeNs lo, TimeNs hi) {
  return latency(std::make_shared<UniformLatency>(lo, hi));
}

ClusterBuilder& ClusterBuilder::wan(const WanProfile& profile,
                                    std::size_t client_site) {
  return latency(std::make_shared<SiteMatrixLatency>(
      profile.rtt_ms, site_mapper(profile.sites.size(), client_site)));
}

void ClusterBuilder::set_kind(Kind k) {
  if (kind_ != Kind::kStorage && kind_ != k) {
    throw std::logic_error(
        "ClusterBuilder: at most one of adaptive()/reassign_only()/"
        "server_factory() may be chosen");
  }
  kind_ = k;
}

ClusterBuilder& ClusterBuilder::adaptive(AdaptiveParams params) {
  set_kind(Kind::kAdaptive);
  adaptive_params_ = std::move(params);
  return *this;
}

ClusterBuilder& ClusterBuilder::server_factory(ServerFactory factory) {
  set_kind(Kind::kCustom);
  server_factory_ = std::move(factory);
  return *this;
}

ClusterBuilder& ClusterBuilder::workload(WorkloadParams params) {
  workload_ = std::move(params);
  return *this;
}

ClusterBuilder& ClusterBuilder::history(std::shared_ptr<HistoryRecorder> h) {
  history_ = std::move(h);
  return *this;
}

ClusterBuilder& ClusterBuilder::add_process(ProcessId pid,
                                            ProcessFactory factory) {
  extras_.emplace_back(pid, std::move(factory));
  return *this;
}

Cluster ClusterBuilder::build() { return Cluster(*this); }

// --- Cluster ----------------------------------------------------------------

ShardMap Cluster::build_shard_map(const ClusterBuilder& spec) {
  if (spec.n_ == 0) {
    throw std::invalid_argument("Cluster: servers(n) is required");
  }
  if (spec.shards_ == 0) {
    throw std::invalid_argument("Cluster: shards(s) needs s >= 1");
  }
  std::uint32_t f =
      spec.fault_.faults ? *spec.fault_.faults : (spec.n_ - 1) / 2;
  WeightMap tmpl =
      spec.weights_ ? *spec.weights_ : WeightMap::uniform(spec.n_);
  // shards(1) — and the unsharded default — is exactly one group with
  // base 0: the same SystemConfig today's unsharded path built.
  return ShardMap::uniform(spec.shards_, spec.n_, f, std::move(tmpl));
}

Cluster::Cluster(const ClusterBuilder& spec)
    : runtime_(spec.runtime_),
      transport_(spec.transport_),
      shard_map_(build_shard_map(spec)),
      config_(shard_map_.config(0)),
      service_time_(spec.service_time_),
      kind_(spec.kind_),
      mode_(spec.mode_),
      history_(spec.history_),
      tuning_(spec.tuning_) {
  if (spec.workload_.has_value() &&
      (kind_ == ClusterBuilder::Kind::kReassign ||
       kind_ == ClusterBuilder::Kind::kCustom)) {
    throw std::invalid_argument(
        "Cluster: workload() needs storage clients — incompatible with "
        "reassign_only()/server_factory()");
  }
  if (shard_map_.num_shards() > 1 &&
      kind_ != ClusterBuilder::Kind::kStorage) {
    throw std::invalid_argument(
        "Cluster: shards(s > 1) needs storage servers — incompatible with "
        "adaptive()/reassign_only()/server_factory()");
  }

  if (transport_ == Transport::kSocket) {
    if (spec.has_runtime_ && spec.runtime_ == Runtime::kSim) {
      throw std::invalid_argument(
          "Cluster: Transport::kSocket runs on wall-clock time — "
          "incompatible with runtime(Runtime::kSim)");
    }
    if (kind_ == ClusterBuilder::Kind::kCustom || !spec.extras_.empty()) {
      throw std::invalid_argument(
          "Cluster: Transport::kSocket cannot ship custom process types "
          "(the wire codec only knows the library's protocol messages)");
    }
    // The socket substrate is in the wall-clock family.
    runtime_ = Runtime::kThread;
  }

  std::shared_ptr<LatencyModel> base = spec.latency_;
  if (!base && runtime_ == Runtime::kSim) {
    // The simulator needs a model; the wall-clock runtimes deliver as
    // fast as possible when none is configured.
    base = std::make_shared<UniformLatency>(ms(1), ms(10));
  }
  if (base) degradable_ = std::make_shared<DegradableLatency>(std::move(base));

  if (transport_ == Transport::kSocket) {
#ifdef __linux__
    SocketEnv::Options opts;
    opts.listen = net::SocketAddr::parse("tcp:127.0.0.1:0");
    // Every message — even between processes of this one OS process —
    // goes out through our own listener and back through the kernel, so
    // the single-process deployment exercises the real wire path.
    opts.loopback_self = true;
    opts.latency = degradable_;
    opts.seed = spec.fault_.seed;
    socket_ = std::make_shared<SocketEnv>(opts);
    socket_env_ = socket_.get();
#else
    throw std::runtime_error(
        "Cluster: Transport::kSocket requires Linux (epoll)");
#endif
  } else if (runtime_ == Runtime::kSim) {
    sim_ = std::make_unique<SimEnv>(degradable_, spec.fault_.seed);
    pump_ = std::make_shared<SimPump>(sim_.get());
  } else {
    thread_ = std::make_unique<ThreadEnv>(degradable_, spec.fault_.seed);
  }
  Env& e = env();

  // Per-shard message accounting rides the send hot path, so it is only
  // installed when the deployment was built with shards().
  if (spec.has_shards_) {
    const std::uint32_t per = config_.n;
    const std::uint32_t total = shard_map_.total_servers();
    e.enable_shard_traffic(
        shard_map_.num_shards(),
        [per, total](ProcessId from, ProcessId to) -> int {
          // Attribute to the server endpoint: the destination server's
          // shard, else (replies to clients) the sending server's.
          if (is_server(to) && to < total) return static_cast<int>(to / per);
          if (is_server(from) && from < total) {
            return static_cast<int>(from / per);
          }
          return -1;
        });
  }

  for (ShardId g = 0; g < shard_map_.num_shards(); ++g) {
    const SystemConfig& shard_cfg = shard_map_.config(g);
    for (ProcessId s : shard_cfg.servers()) {
      ServerSlot slot;
      switch (kind_) {
        case ClusterBuilder::Kind::kStorage: {
          auto node = std::make_unique<DynamicStorageNode>(e, s, shard_cfg);
          slot.storage = node.get();
          slot.reassign = &node->reassign();
          slot.process = std::move(node);
          break;
        }
        case ClusterBuilder::Kind::kAdaptive: {
          auto node = std::make_unique<AdaptiveNode>(e, s, shard_cfg,
                                                     spec.adaptive_params_);
          slot.adaptive = node.get();
          slot.storage = &node->storage();
          slot.reassign = &node->reassign();
          slot.process = std::move(node);
          break;
        }
        case ClusterBuilder::Kind::kReassign: {
          auto node = std::make_unique<ReassignNode>(e, s, shard_cfg);
          slot.reassign = node.get();
          slot.process = std::move(node);
          break;
        }
        case ClusterBuilder::Kind::kCustom: {
          if (!spec.server_factory_) {
            throw std::invalid_argument("Cluster: null server factory");
          }
          slot.process = spec.server_factory_(e, s, shard_cfg);
          if (!slot.process) {
            throw std::invalid_argument(
                "Cluster: server factory returned null");
          }
          break;
        }
      }
      // Fault-tolerance hardening (defaults off: fault-free deployments
      // run byte-identically to pre-chaos builds).
      if (tuning_.retry > 0 && slot.storage != nullptr) {
        slot.storage->client().set_retry_interval(tuning_.retry);
      }
      if (service_time_ > 0 && slot.storage != nullptr) {
        slot.storage->server().set_service_time(service_time_);
      }
      if (tuning_.anti_entropy > 0 && slot.reassign != nullptr) {
        slot.reassign->enable_sync(tuning_.anti_entropy);
      }
      e.register_process(s, slot.process.get());
      servers_.push_back(std::move(slot));
    }
  }

  // Elastic resharding: every multi-shard storage deployment gets the
  // MigrationEngine (so migrate_key always works there); the Rebalancer
  // controller only when asked for. shards(1) stays byte-identical to
  // the unsharded deployment — no extra process, no extra traffic.
  if (spec.rebalance_.has_value() && shard_map_.num_shards() < 2) {
    throw std::invalid_argument(
        "Cluster: rebalance() needs shards(s >= 2) to balance across");
  }
  if (shard_map_.num_shards() > 1 &&
      kind_ == ClusterBuilder::Kind::kStorage) {
    engine_ = std::make_unique<MigrationEngine>(e, kMigrationEnginePid,
                                                shard_map_, mode_);
    if (tuning_.retry > 0) engine_->set_retry_interval(tuning_.retry);
    e.register_process(engine_->pid(), engine_.get());
    if (spec.rebalance_.has_value()) {
      std::vector<std::vector<AbdServer*>> shard_servers(
          shard_map_.num_shards());
      for (ShardId g = 0; g < shard_map_.num_shards(); ++g) {
        for (ProcessId s : shard_map_.servers(g)) {
          shard_servers[g].push_back(&servers_[s].storage->server());
        }
      }
      rebalancer_ = std::make_unique<Rebalancer>(
          e, *engine_, *spec.rebalance_, std::move(shard_servers));
    }
  }

  for (std::uint32_t k = 0; k < spec.clients_; ++k) {
    if (kind_ == ClusterBuilder::Kind::kReassign) {
      std::lock_guard lock(clients_mu_);
      ClientSlot slot;
      ProcessId pid = client_id(k);
      auto c = std::make_unique<ReassignClient>(e, pid, config_);
      slot.reassign = c.get();
      slot.process = std::move(c);
      e.register_process(pid, slot.process.get());
      clients_.push_back(std::move(slot));
    } else {
      make_client_slot(spec.workload_.has_value() ? &*spec.workload_
                                                  : nullptr);
    }
  }

  for (const auto& [pid, factory] : spec.extras_) {
    auto p = factory(e, config_);
    if (!p) throw std::invalid_argument("Cluster: process factory returned null");
    e.register_process(pid, p.get());
    extra_[pid] = std::move(p);
  }

  if (sim_) {
    sim_->start();
  } else if (thread_) {
    thread_->start();
  } else {
#ifdef __linux__
    socket_->start();
#endif
  }
  if (rebalancer_) rebalancer_->start();
}

Cluster::~Cluster() {
  // Workers must stop before the processes they drive are destroyed.
  if (thread_) thread_->stop();
#ifdef __linux__
  if (socket_) socket_->stop();
#endif
}

Env& Cluster::env() {
  if (sim_) return *sim_;
  if (socket_env_ != nullptr) return *socket_env_;
  return *thread_;
}

const Env& Cluster::env() const {
  if (sim_) return *sim_;
  if (socket_env_ != nullptr) return *socket_env_;
  return *thread_;
}

Cluster::ServerSlot& Cluster::server_slot(ProcessId s) {
  if (s >= servers_.size()) {
    throw std::out_of_range(
        "Cluster: server index " + std::to_string(s) +
        " out of range [0, " + std::to_string(servers_.size()) + ")");
  }
  return servers_[s];
}

Cluster::ClientSlot& Cluster::client_slot(std::size_t k) {
  std::lock_guard lock(clients_mu_);
  if (k >= clients_.size()) {
    throw std::out_of_range(
        "Cluster: client index " + std::to_string(k) + " out of range [0, " +
        std::to_string(clients_.size()) + ")");
  }
  // The reference stays valid after unlock: clients_ is a deque (growth
  // never moves existing slots) and slots are never destroyed mid-run.
  return clients_[k];
}

std::size_t Cluster::make_client_slot(const WorkloadParams* wp) {
  Env& e = env();
  std::lock_guard lock(clients_mu_);
  ClientSlot slot;
  ProcessId pid = client_id(static_cast<std::uint32_t>(clients_.size()));
  if (wp != nullptr) {
    auto c = std::make_unique<WorkloadClient>(e, pid, shard_map_, mode_, *wp,
                                              history_);
    slot.workload = c.get();
    slot.router = &c->router();
    slot.done = make_await<bool>();
    Await<bool> done = slot.done;
    c->set_on_done([done] { done.fulfill(true); });
    slot.process = std::move(c);
  } else {
    auto c = std::make_unique<StorageClient>(e, pid, shard_map_, mode_);
    slot.router = &c->router();
    slot.process = std::move(c);
  }
  if (tuning_.retry > 0) slot.router->set_retry_interval(tuning_.retry);
  if (tuning_.read_fast_path) slot.router->set_read_fast_path(true);
  if (tuning_.batch_ops > 1) {
    slot.router->set_batching(tuning_.batch_ops, tuning_.batch_delay);
  }
  slot.router->set_snapshot_max_collect_rounds(
      tuning_.snapshot_max_collect_rounds);
  e.register_process(pid, slot.process.get());
  clients_.push_back(std::move(slot));
  return clients_.size() - 1;
}

std::size_t Cluster::add_client() {
  if (kind_ == ClusterBuilder::Kind::kReassign ||
      kind_ == ClusterBuilder::Kind::kCustom) {
    throw std::logic_error("Cluster: add_client needs a storage deployment");
  }
  return make_client_slot(nullptr);
}

std::size_t Cluster::add_client(const WorkloadParams& params) {
  if (kind_ == ClusterBuilder::Kind::kReassign ||
      kind_ == ClusterBuilder::Kind::kCustom) {
    throw std::logic_error("Cluster: add_client needs a storage deployment");
  }
  return make_client_slot(&params);
}

ClientHandle Cluster::client(std::size_t k) {
  ClientSlot& slot = client_slot(k);
  if (slot.router == nullptr) {
    throw std::logic_error("Cluster: client(k) needs a storage deployment");
  }
  return ClientHandle(this, client_id(static_cast<std::uint32_t>(k)),
                      slot.router);
}

ReassignHandle Cluster::server(ProcessId s) {
  ServerSlot& slot = server_slot(s);
  if (slot.reassign == nullptr) {
    throw std::logic_error(
        "Cluster: server(s) has no reassignment endpoint (custom factory)");
  }
  return ReassignHandle(this, s, slot.reassign);
}

ReassignClientHandle Cluster::reassign_client(std::size_t k) {
  ClientSlot& slot = client_slot(k);
  if (slot.reassign == nullptr) {
    throw std::logic_error(
        "Cluster: reassign_client(k) needs a reassign_only deployment");
  }
  return ReassignClientHandle(this, client_id(static_cast<std::uint32_t>(k)),
                              slot.reassign);
}

DynamicStorageNode& Cluster::storage_node(ProcessId s) {
  ServerSlot& slot = server_slot(s);
  if (slot.storage == nullptr) {
    throw std::logic_error("Cluster: server " + process_name(s) +
                           " is not a storage node");
  }
  return *slot.storage;
}

AdaptiveNode& Cluster::adaptive_node(ProcessId s) {
  ServerSlot& slot = server_slot(s);
  if (slot.adaptive == nullptr) {
    throw std::logic_error("Cluster: server " + process_name(s) +
                           " is not adaptive");
  }
  return *slot.adaptive;
}

ReassignNode& Cluster::reassign_node(ProcessId s) {
  return server(s).node();
}

Process& Cluster::process(ProcessId pid) {
  if (is_server(pid) && pid < servers_.size()) {
    return *servers_[pid].process;
  }
  auto it = extra_.find(pid);
  if (it != extra_.end()) return *it->second;
  throw std::out_of_range("Cluster: no process " + process_name(pid));
}

WorkloadClient& Cluster::workload(std::size_t k) {
  ClientSlot& slot = client_slot(k);
  if (slot.workload == nullptr) {
    throw std::logic_error("Cluster: client #" + std::to_string(k) +
                           " runs no workload");
  }
  return *slot.workload;
}

Await<bool> Cluster::workload_done(std::size_t k) {
  ClientSlot& slot = client_slot(k);
  if (slot.workload == nullptr) {
    throw std::logic_error("Cluster: client #" + std::to_string(k) +
                           " runs no workload");
  }
  return slot.done;
}

void Cluster::post(ProcessId pid, std::function<void()> fn) {
  env().schedule(pid, 0, std::move(fn));
}

void Cluster::check_process(ProcessId pid) const {
  // Extras may use arbitrary ids (oracles etc.), so they are checked
  // before the server-range test.
  if (extra_.count(pid) != 0) return;
  if (engine_ && pid == engine_->pid()) return;
  if (is_server(pid) && pid < servers_.size()) return;
  if (is_client(pid)) {
    std::lock_guard lock(clients_mu_);
    if (pid - kClientIdBase < clients_.size()) return;
    throw std::out_of_range(
        "Cluster: client " + process_name(pid) + " out of range [c0, c" +
        std::to_string(clients_.size()) + ")");
  }
  throw std::out_of_range(
      "Cluster: no process " + process_name(pid) + " (valid servers [s0, s" +
      std::to_string(servers_.size()) + "))");
}

ProcessId Cluster::server_id(ShardId g, std::uint32_t i) const {
  const SystemConfig& cfg = shard_map_.config(g);  // validates g
  if (i >= cfg.n) {
    throw std::out_of_range(
        "Cluster: server index " + std::to_string(i) + " out of range [0, " +
        std::to_string(cfg.n) + ") in shard " + std::to_string(g));
  }
  return cfg.base + i;
}

const Counters& Cluster::shard_traffic(ShardId g) const {
  if (!env().shard_traffic_enabled()) {
    throw std::logic_error(
        "Cluster: shard_traffic needs a deployment built with shards()");
  }
  return env().shard_traffic(g);
}

MigrationEngine& Cluster::migration_engine() {
  if (!engine_) {
    throw std::logic_error(
        "Cluster: migration needs a storage deployment with shards(s >= 2)");
  }
  return *engine_;
}

Await<bool> Cluster::migrate_key(RegisterKey key, ShardId to) {
  MigrationEngine& eng = migration_engine();
  if (to >= num_shards()) {
    throw std::out_of_range("Cluster: migrate_key to shard " +
                            std::to_string(to) + " out of range [0, " +
                            std::to_string(num_shards()) + ")");
  }
  auto aw = make_await<bool>();
  MigrationEngine* e = &eng;
  // migrate() must run in the engine's execution context; the callback
  // fires there too once the handoff fully commits on both sides.
  post(eng.pid(), [e, key = std::move(key), to, aw] {
    e->migrate(key, to, [aw](bool ok) { aw.fulfill(ok); });
  });
  return aw;
}

MigrationStats Cluster::migration_stats() const {
  if (!engine_) {
    throw std::logic_error(
        "Cluster: migration needs a storage deployment with shards(s >= 2)");
  }
  return engine_->stats();
}

Rebalancer& Cluster::rebalancer() {
  if (!rebalancer_) {
    throw std::logic_error(
        "Cluster: rebalancer() needs a deployment built with rebalance()");
  }
  return *rebalancer_;
}

RebalanceStats Cluster::rebalance_stats() const {
  if (!rebalancer_) {
    throw std::logic_error(
        "Cluster: rebalance_stats needs a deployment built with rebalance()");
  }
  return rebalancer_->stats();
}

void Cluster::crash(ProcessId pid) {
  check_process(pid);
  env().crash(pid);
}

bool Cluster::is_crashed(ProcessId pid) const { return env().is_crashed(pid); }

void Cluster::partition(ProcessId a, ProcessId b) {
  check_process(a);
  check_process(b);
  env().faults().partition(a, b);
}

void Cluster::heal(ProcessId a, ProcessId b) {
  check_process(a);
  check_process(b);
  env().faults().heal(a, b);
}

namespace {

/// Applies `fn` to every (side, rest) pair of the deployment.
template <typename Fn>
void for_split_pairs(const std::vector<ProcessId>& side,
                     const std::vector<ProcessId>& all, Fn fn) {
  std::set<ProcessId> in_side(side.begin(), side.end());
  for (ProcessId a : side) {
    for (ProcessId b : all) {
      if (in_side.count(b) == 0) fn(a, b);
    }
  }
}

}  // namespace

void Cluster::partition_split(const std::vector<ProcessId>& side) {
  for (ProcessId p : side) check_process(p);
  LinkFaults& f = env().faults();
  for_split_pairs(side, process_ids(),
                  [&f](ProcessId a, ProcessId b) { f.partition(a, b); });
}

void Cluster::heal_split(const std::vector<ProcessId>& side) {
  for (ProcessId p : side) check_process(p);
  LinkFaults& f = env().faults();
  for_split_pairs(side, process_ids(),
                  [&f](ProcessId a, ProcessId b) { f.heal(a, b); });
}

void Cluster::isolate(ProcessId pid) {
  check_process(pid);
  LinkFaults& f = env().faults();
  for (ProcessId other : process_ids()) {
    if (other != pid) f.partition(pid, other);
  }
}

void Cluster::partition_shard(ShardId g) {
  partition_split(shard_servers(g));  // shard_servers validates g
}

void Cluster::heal_shard(ShardId g) { heal_split(shard_servers(g)); }

void Cluster::drop_link(ProcessId a, ProcessId b, double p) {
  check_process(a);
  check_process(b);
  env().faults().set_drop(a, b, p);
}

void Cluster::drop_all_links(double p) { env().faults().set_drop_all(p); }

void Cluster::duplicate_link(ProcessId a, ProcessId b, double p) {
  check_process(a);
  check_process(b);
  env().faults().set_duplicate(a, b, p);
}

void Cluster::duplicate_all_links(double p) {
  env().faults().set_duplicate_all(p);
}

void Cluster::reorder_links(double p, TimeNs max_extra) {
  // Stored unconditionally; the thread runtime samples real concurrency
  // instead and ignores it (see LinkFaults).
  env().faults().set_reorder(p, max_extra);
}

void Cluster::heal_all_links() { env().faults().heal_all(); }

std::vector<ProcessId> Cluster::process_ids() const {
  std::vector<ProcessId> out = shard_map_.all_server_ids();
  {
    std::lock_guard lock(clients_mu_);
    for (std::size_t k = 0; k < clients_.size(); ++k) {
      out.push_back(client_id(static_cast<std::uint32_t>(k)));
    }
  }
  for (const auto& [pid, _] : extra_) out.push_back(pid);
  if (engine_) out.push_back(engine_->pid());
  return out;
}

void Cluster::set_anti_entropy(TimeNs period) {
  for (ProcessId s = 0; s < servers_.size(); ++s) {
    ReassignNode* node = servers_[s].reassign;
    if (node == nullptr) continue;  // custom factory servers
    post(s, [node, period] { node->enable_sync(period); });
  }
}

void Cluster::slow(ProcessId pid, double factor) {
  check_process(pid);
  if (!degradable_) {
    throw std::logic_error("Cluster: no latency model to degrade");
  }
  degradable_->set_factor(pid, factor);
}

void Cluster::clear_slow(ProcessId pid) {
  check_process(pid);
  if (!degradable_) return;
  degradable_->clear_factor(pid);
}

void Cluster::set_latency(std::unique_ptr<LatencyModel> model) {
  if (!degradable_) {
    throw std::logic_error(
        "Cluster: set_latency needs a deployment built with a latency model");
  }
  degradable_->set_inner(std::move(model));
}

void Cluster::at(TimeNs delay, std::function<void()> fn) {
  // kNoProcess = env-internal on both substrates: the script runs even if
  // every server is crashed (it only touches thread-safe scenario state).
  env().schedule(kNoProcess, delay, std::move(fn));
}

TimeNs Cluster::now() const { return env().now(); }

void Cluster::run_for(TimeNs d) {
  if (sim_) {
    sim_->run_until(sim_->now() + d);
    return;
  }
  std::this_thread::sleep_for(std::chrono::nanoseconds(d));
}

void Cluster::quiesce(TimeNs deadline) {
  if (sim_) {
    sim_->run_to_quiescence(deadline);
    return;
  }
  std::this_thread::sleep_for(
      std::chrono::nanoseconds(std::min(deadline, ms(200))));
}

const Counters& Cluster::traffic() const { return env().traffic(); }

// --- handles ----------------------------------------------------------------

Await<TaggedValue> ClientHandle::read(RegisterKey key) const {
  auto aw = cluster_->make_await<TaggedValue>();
  ShardRouter* router = router_;
  cluster_->post(id_, [router, key = std::move(key), aw] {
    router->read(key, [aw](const TaggedValue& tv) { aw.fulfill(tv); });
  });
  return aw;
}

Await<Tag> ClientHandle::write(RegisterKey key, Value value) const {
  auto aw = cluster_->make_await<Tag>();
  ShardRouter* router = router_;
  cluster_->post(id_, [router, key = std::move(key), value = std::move(value),
                       aw] {
    router->write(key, value, [aw](const Tag& tag) { aw.fulfill(tag); });
  });
  return aw;
}

std::vector<Await<TaggedValue>> ClientHandle::read_batch(
    std::vector<RegisterKey> keys) const {
  std::vector<Await<TaggedValue>> awaits;
  awaits.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    awaits.push_back(cluster_->make_await<TaggedValue>());
  }
  ShardRouter* router = router_;
  // One hop into the client's context issues the whole batch, so every
  // operation is in flight before the first reply is processed.
  cluster_->post(id_, [router, keys = std::move(keys), awaits] {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      Await<TaggedValue> aw = awaits[i];
      router->read(keys[i], [aw](const TaggedValue& tv) { aw.fulfill(tv); });
    }
  });
  return awaits;
}

std::vector<Await<Tag>> ClientHandle::write_batch(
    std::vector<std::pair<RegisterKey, Value>> puts) const {
  std::vector<Await<Tag>> awaits;
  awaits.reserve(puts.size());
  for (std::size_t i = 0; i < puts.size(); ++i) {
    awaits.push_back(cluster_->make_await<Tag>());
  }
  ShardRouter* router = router_;
  cluster_->post(id_, [router, puts = std::move(puts), awaits] {
    for (std::size_t i = 0; i < puts.size(); ++i) {
      Await<Tag> aw = awaits[i];
      router->write(puts[i].first, puts[i].second,
                    [aw](const Tag& tag) { aw.fulfill(tag); });
    }
  });
  return awaits;
}

Await<ShardRouter::SnapshotResult> ClientHandle::snapshot(
    std::vector<RegisterKey> keys) const {
  auto aw = cluster_->make_await<ShardRouter::SnapshotResult>();
  ShardRouter* router = router_;
  cluster_->post(id_, [router, keys = std::move(keys), aw]() mutable {
    router->snapshot(std::move(keys),
                     [aw](const ShardRouter::SnapshotResult& r) {
                       aw.fulfill(r);
                     });
  });
  return aw;
}

Await<std::vector<RegisterKey>> ClientHandle::list_keys() const {
  auto aw = cluster_->make_await<std::vector<RegisterKey>>();
  ShardRouter* router = router_;
  cluster_->post(id_, [router, aw] {
    router->list_keys(
        [aw](const std::vector<RegisterKey>& keys) { aw.fulfill(keys); });
  });
  return aw;
}

Await<TransferOutcome> ReassignHandle::transfer(ProcessId to,
                                                const Weight& delta) const {
  auto aw = cluster_->make_await<TransferOutcome>();
  ReassignNode* node = node_;
  cluster_->post(id_, [node, to, delta, aw] {
    node->transfer(to, delta,
                   [aw](const TransferOutcome& o) { aw.fulfill(o); });
  });
  return aw;
}

Await<ChangeSet> ReassignHandle::read_changes(ProcessId target) const {
  auto aw = cluster_->make_await<ChangeSet>();
  ReassignNode* node = node_;
  cluster_->post(id_, [node, target, aw] {
    node->read_changes(target, [aw](const ChangeSet& cs) { aw.fulfill(cs); });
  });
  return aw;
}

Await<WeightMap> ReassignHandle::weights_snapshot() const {
  auto aw = cluster_->make_await<WeightMap>();
  ReassignNode* node = node_;
  std::vector<ProcessId> servers = cluster_->config().servers();
  cluster_->post(id_, [node, servers = std::move(servers), aw] {
    aw.fulfill(node->changes().to_weight_map(servers));
  });
  return aw;
}

WeightMap ReassignHandle::weights() const {
  return node_->changes().to_weight_map(cluster_->config().servers());
}

Await<ChangeSet> ReassignClientHandle::read_changes(ProcessId target) const {
  auto aw = cluster_->make_await<ChangeSet>();
  ReassignClient* client = client_;
  cluster_->post(id_, [client, target, aw] {
    client->read_changes(target,
                         [aw](const ChangeSet& cs) { aw.fulfill(cs); });
  });
  return aw;
}

}  // namespace wrs
