// wrs::Cluster — the declarative deployment facade.
//
// Every entry point used to hand-wire the same ~60 lines: build a
// SystemConfig, pick an Env, loop register_process over freshly
// constructed nodes, then poll bool flags through run_until_pred. The
// facade owns all of that once:
//
//   Cluster c = Cluster::builder()
//                   .servers(4)
//                   .faults(1)
//                   .uniform_latency(ms(1), ms(10))
//                   .runtime(Runtime::kSim)      // or Runtime::kThread
//                   .build();
//   Tag t = c.client().write("hello").get();
//   TaggedValue tv = c.client().read().get();
//   TransferOutcome o = c.server(3).transfer(0, Weight(1, 4)).get();
//
// Operations pipeline through one client: issue many awaits (or a
// read_batch/write_batch) before getting any, then fan in —
//
//   auto tags = when_all(c.client().write_batch({{"a", "1"}, {"b", "2"}}))
//                   .get();
//   auto ab = when_all(c.client().read("a"), c.client().read("b")).get();
//
// The SAME driver source runs on the deterministic simulator or the
// thread-per-process runtime by flipping the builder's Runtime enum:
// Await<T>::get pumps the simulator's event loop or blocks on a condition
// variable as appropriate (see api/await.h), and operations are always
// issued from the owning process's execution context.
//
// Scenario injection is first-class: crash(s), slow(s, factor) /
// clear_slow(s), and set_latency(...) reshape the deployment mid-run, so
// fault and geo scripts read declaratively. The fault plane adds link
// verbs: partition(a, b) / heal(a, b), partition_split(side), isolate(p),
// drop_link / drop_all_links(p), duplicate_link / duplicate_all_links(p),
// reorder_links(p, max) (sim-only), heal_all_links(). Cut or dropped
// messages are LOST (healing does not resurrect them), so chaos
// deployments opt into liveness hardening at build time:
//
//   Cluster c = Cluster::builder()
//                   .servers(5).clients(2)
//                   .retry(ms(10))          // ABD phase retransmission
//                   .anti_entropy(ms(25))   // <SYNC> change-set gossip
//                   .seed(seed)             // replay: same seed, same run
//                   .build();
//   c.partition(0, 1);                      // ... chaos ...
//   c.heal(0, 1);
//
// On Runtime::kSim an entire chaos episode — including every drop,
// duplication, and reordering decision — is a pure function of the seed,
// so any failure replays bit-for-bit (see src/testing/nemesis.h and
// tests/test_chaos_fuzz.cpp for the seeded scenario drivers).
//
// Sharded deployments scale the keyspace out over independent replica
// groups: builder.shards(g) deploys g groups of servers(n) servers each
// (global server ids are shard-major: shard g owns [g*n, (g+1)*n)), and
// every client routes operations by key through a ShardRouter. Weight
// reassignment becomes a per-shard knob — each group runs its own
// ReassignNode protocol — and the scenario verbs grow shard selectors:
//
//   Cluster c = Cluster::builder()
//                   .servers(3).shards(4).clients(2)
//                   .service_time(ms(1))   // modeled per-server capacity
//                   .build();
//   c.crash(/*shard=*/2, /*index=*/0);     // server s6
//   c.partition_shard(1);                  // wall off group 1
//   c.server(3, 1).transfer(c.server_id(3, 0), Weight(1, 4));
//
// shards(1) (or never calling shards) is byte-for-byte today's
// unsharded deployment — one group, key "" included. All shard and
// server ids are validated and errors name the offender + valid range.
//
// The wire protocol can BATCH: builder.batching(max_ops, max_delay)
// makes every client coalesce same-shard phase broadcasts issued within
// `max_delay` of each other into one BatchRequest envelope (flushed
// early at `max_ops` frames), which servers answer with one BatchReply —
// cutting msgs/op by the mean batch size at unchanged protocol
// semantics. batching(1) is byte-identical to the unbatched wire
// protocol, and CI gates on the batched/unbatched msgs-per-op ratio
// (see bench/shard_scaleout --batch and README "Wire protocol &
// batching").
//
// Multi-key reads can be ATOMIC: client().snapshot({"a", "b", "c"})
// resolves to a consistent cut across the named keys — and across the
// shards that own them — via repeated pipelined collects with a fenced
// wait-free fallback under contention (see shard/shard_router.h). The
// history checker validates recorded cuts against per-cut consistency
// and pairwise comparability (storage/history.h, conditions S1/S2).
//
// Deployment knobs group into option STRUCTS — TuningOptions (wire and
// protocol tuning), FaultOptions (fault threshold + seed),
// WorkloadOptions (op mix + history recorder) — each settable whole:
//
//   TuningOptions t{.retry = ms(10), .read_fast_path = true};
//   Cluster c = Cluster::builder().servers(3).tuning(t).build();
//
// The original flat setters (retry(), batching(), seed(), ...) remain
// and delegate field-by-field into the structs, so either style — or a
// mix — builds the identical deployment.
//
// The low-level Env/Process API stays public — protocol internals and
// white-box tests keep using it; the facade is the deployment surface.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "api/await.h"
#include "core/config.h"
#include "core/reassign_client.h"
#include "monitor/adaptive_node.h"
#include "rebalance/rebalancer.h"
#include "runtime/sim_env.h"
#include "runtime/thread_env.h"
#include "shard/shard_map.h"
#include "storage/dynamic_node.h"
#include "workload/wan_profiles.h"
#include "workload/workload.h"

namespace wrs {

/// Which substrate the deployment runs on. Protocols cannot tell the
/// difference; drivers should not have to either.
enum class Runtime { kSim, kThread };

/// How messages move. kInProcess hands shared_ptrs between in-process
/// mailboxes (SimEnv/ThreadEnv); kSocket WireCodec-serializes every
/// message and routes it through this process's own TCP listener via a
/// SocketEnv (src/runtime/socket_env.h) — a real kernel round trip per
/// message, wall-clock time, Linux only. With kSocket the runtime is
/// implicitly the wall-clock family; asking for Runtime::kSim throws.
enum class Transport { kInProcess, kSocket };

class SocketEnv;
class Cluster;
class ClusterBuilder;

/// Protocol and wire tuning knobs as ONE value. Everything here has a
/// matching flat ClusterBuilder setter (those delegate into this struct,
/// so the two surfaces can never drift); the struct form exists so a
/// deployment's tuning can be named, stored, and passed around whole:
///
///   TuningOptions chaos_tuning{.retry = ms(10), .anti_entropy = ms(25)};
///   auto c = Cluster::builder().servers(5).tuning(chaos_tuning).build();
///
/// Defaults are all "off": default-constructed TuningOptions is the
/// byte-identical classical deployment, like never calling the setters.
struct TuningOptions {
  /// Batched wire protocol (ClusterBuilder::batching): frames per
  /// envelope; <= 1 is the unbatched wire, byte for byte.
  std::size_t batch_ops = 1;
  TimeNs batch_delay = 0;
  /// ABD phase retransmission interval (ClusterBuilder::retry); 0 off.
  TimeNs retry = 0;
  /// One-round read fast path (ClusterBuilder::read_fast_path).
  bool read_fast_path = false;
  /// Periodic <SYNC> change-set gossip (ClusterBuilder::anti_entropy);
  /// 0 off.
  TimeNs anti_entropy = 0;
  /// Collect rounds a snapshot() tries before engaging the fenced
  /// fallback (ShardRouter::set_snapshot_max_collect_rounds).
  std::uint32_t snapshot_max_collect_rounds = 6;
};

/// Failure-model knobs as one value (ClusterBuilder::fault_options).
struct FaultOptions {
  /// Per-shard fault threshold f; unset derives the maximum (n-1)/2.
  std::optional<std::uint32_t> faults;
  /// Seed for every seeded decision in the deployment (latency draws,
  /// fault-plane coin flips): same seed, same run on the simulator.
  std::uint64_t seed = 1;
};

/// Workload attachment as one value (ClusterBuilder::workload_options):
/// the op mix plus the recorder its history lands in.
struct WorkloadOptions {
  WorkloadParams params;
  /// Optional: record every operation for check_atomicity().
  std::shared_ptr<HistoryRecorder> history;
};

/// Awaitable storage endpoint: wraps one deployed client process (a
/// StorageClient, or a WorkloadClient when a workload is attached).
///
/// Operations PIPELINE: the underlying AbdClient multiplexes any number
/// of in-flight operations, so issuing several awaits before the first
/// .get() overlaps their quorum rounds (ops on the same key keep issue
/// order). read_batch/write_batch issue a whole batch in one hop into
/// the client's execution context; fan the results in with
/// when_all(awaits).get() or Await<T>::then.
class ClientHandle {
 public:
  /// Atomic read of register `key` (the paper's register is key "").
  /// Sharded deployments route the op to the key's shard.
  Await<TaggedValue> read(RegisterKey key = {}) const;

  /// Atomic write; resolves to the tag the value was written under.
  Await<Tag> write(Value value) const { return write(RegisterKey{}, value); }
  Await<Tag> write(RegisterKey key, Value value) const;

  /// Pipelined batch reads: all keys issued before any completes; the
  /// k-th await resolves to the k-th key's (tag, value).
  std::vector<Await<TaggedValue>> read_batch(
      std::vector<RegisterKey> keys) const;

  /// Pipelined batch writes; the k-th await resolves to the k-th put's
  /// write tag. Puts to distinct keys proceed concurrently.
  std::vector<Await<Tag>> write_batch(
      std::vector<std::pair<RegisterKey, Value>> puts) const;

  /// Atomic multi-key snapshot: resolves to a cut of the given registers
  /// (possibly spanning shards) that is CONSISTENT — some instant of the
  /// linearization holds exactly these (tag, value) pairs, even while
  /// writers and key migrations race the scan. Double-collect first, a
  /// bounded fenced fallback under contention (see ShardRouter::snapshot);
  /// TuningOptions::snapshot_max_collect_rounds sets the switch-over.
  /// The result also reports rounds taken and whether the fallback ran.
  Await<ShardRouter::SnapshotResult> snapshot(
      std::vector<RegisterKey> keys) const;

  /// Discovers every register key stored at some weighted quorum (on a
  /// sharded deployment: the union over every shard's quorum).
  Await<std::vector<RegisterKey>> list_keys() const;

  /// Low-level escape hatches (callback API, client-context only).
  /// abd() is the single-group client; it throws on sharded deployments
  /// — use router() or router().shard_client(g) there.
  AbdClient& abd() const { return router_->only_client(); }
  ShardRouter& router() const { return *router_; }
  ProcessId id() const { return id_; }

 private:
  friend class Cluster;
  ClientHandle(Cluster* cluster, ProcessId id, ShardRouter* router)
      : cluster_(cluster), id_(id), router_(router) {}

  Cluster* cluster_;
  ProcessId id_;
  ShardRouter* router_;
};

/// Awaitable reassignment endpoint of one deployed server.
class ReassignHandle {
 public:
  /// Algorithm 4: moves `delta` of this server's weight to `to`. Resolves
  /// when the transfer completed (effective or null).
  Await<TransferOutcome> transfer(ProcessId to, const Weight& delta) const;

  /// Algorithm 3: read_changes(target) issued from this server.
  Await<ChangeSet> read_changes(ProcessId target) const;

  /// Weight map snapshot taken in the server's own execution context —
  /// the race-free way to observe convergence on the thread runtime.
  Await<WeightMap> weights_snapshot() const;

  /// Direct accessors; on the thread runtime only safe when the
  /// deployment is quiescent (use weights_snapshot() while it runs).
  ReassignNode& node() const { return *node_; }
  Weight weight_of(ProcessId server) const { return node_->weight_of(server); }
  WeightMap weights() const;

  ProcessId id() const { return id_; }

 private:
  friend class Cluster;
  ReassignHandle(Cluster* cluster, ProcessId id, ReassignNode* node)
      : cluster_(cluster), id_(id), node_(node) {}

  Cluster* cluster_;
  ProcessId id_;
  ReassignNode* node_;
};

/// Awaitable endpoint of a reassignment-service client (reassign-only
/// deployments): may invoke read_changes but never transfer.
class ReassignClientHandle {
 public:
  Await<ChangeSet> read_changes(ProcessId target) const;
  ProcessId id() const { return id_; }

 private:
  friend class Cluster;
  ReassignClientHandle(Cluster* cluster, ProcessId id, ReassignClient* client)
      : cluster_(cluster), id_(id), client_(client) {}

  Cluster* cluster_;
  ProcessId id_;
  ReassignClient* client_;
};

class ClusterBuilder {
 public:
  using ServerFactory = std::function<std::unique_ptr<Process>(
      Env&, ProcessId, const SystemConfig&)>;
  using ProcessFactory =
      std::function<std::unique_ptr<Process>(Env&, const SystemConfig&)>;

  /// --- option groups -----------------------------------------------------
  /// Each struct setter replaces the matching flat setters below with one
  /// value; the flat setters are thin wrappers writing through to these
  /// structs, so mixing the two styles is well-defined (last write wins
  /// field by field).
  ClusterBuilder& tuning(TuningOptions t) { tuning_ = t; return *this; }
  ClusterBuilder& fault_options(FaultOptions f) { fault_ = f; return *this; }
  ClusterBuilder& workload_options(WorkloadOptions w) {
    workload_ = std::move(w.params);
    history_ = std::move(w.history);
    return *this;
  }

  /// --- topology ----------------------------------------------------------
  /// Servers PER SHARD (unsharded deployments have exactly one shard).
  ClusterBuilder& servers(std::uint32_t n) { n_ = n; return *this; }
  /// Fault threshold per shard (== FaultOptions::faults).
  ClusterBuilder& faults(std::uint32_t f) { fault_.faults = f; return *this; }
  /// Initial weight assignment, keyed 0..n-1; defaults to uniform weight
  /// 1 per server. Sharded deployments apply it as every shard's
  /// per-group template.
  ClusterBuilder& weights(WeightMap w) { weights_ = std::move(w); return *this; }
  /// Sharded keyspace: `s` independent replica groups of servers(n)
  /// servers each, client operations routed by key. shards(1) behaves
  /// identically to an unsharded deployment. Storage deployments only
  /// (incompatible with adaptive()/reassign_only()/server_factory()).
  ClusterBuilder& shards(std::uint32_t s) {
    shards_ = s;
    has_shards_ = true;
    return *this;
  }
  /// Modeled serial per-request service time of every storage server
  /// (an M/D/1-style busy-until queue; see AbdServer). Gives each node a
  /// finite capacity of 1/t requests per second on BOTH runtimes — the
  /// per-shard bottleneck scale-out benchmarks measure against. 0 (the
  /// default) replies inline, event-identical to the unmodeled server.
  ClusterBuilder& service_time(TimeNs per_request) {
    service_time_ = per_request;
    return *this;
  }

  /// Batched wire protocol for every deployed client (including clients
  /// added mid-run): same-shard phase broadcasts issuable within
  /// `max_delay` of each other coalesce into one BatchRequest envelope of
  /// up to `max_ops` frames, servers answer each envelope with one
  /// BatchReply, and the client demultiplexes — cutting the per-operation
  /// message constant by the mean batch size while per-key FIFO, unique
  /// write tags, retries, and change-set restarts stay untouched.
  /// batching(1) (or never calling batching) is byte-identical to the
  /// unbatched wire protocol — pinned in tests like shards(1).
  /// (== TuningOptions::batch_ops / batch_delay.)
  ClusterBuilder& batching(std::size_t max_ops, TimeNs max_delay = 0) {
    tuning_.batch_ops = max_ops;
    tuning_.batch_delay = max_delay;
    return *this;
  }

  /// --- substrate ---------------------------------------------------------
  ClusterBuilder& runtime(Runtime r) {
    runtime_ = r;
    has_runtime_ = true;
    return *this;
  }
  /// Transport::kSocket deploys everything in this process over real
  /// loopback sockets (storage/adaptive/reassign roles only; custom
  /// factories and add_process would need wire types the codec does not
  /// know). Incompatible with runtime(Runtime::kSim).
  ClusterBuilder& transport(Transport t) { transport_ = t; return *this; }
  /// (== FaultOptions::seed.)
  ClusterBuilder& seed(std::uint64_t s) { fault_.seed = s; return *this; }

  /// --- fault-tolerance hardening ------------------------------------------
  /// ABD phase retransmission interval for every client in the deployment
  /// (including each storage node's internal refresh client). Off by
  /// default; REQUIRED for liveness when the fault plane loses messages.
  /// (== TuningOptions::retry.)
  ClusterBuilder& retry(TimeNs interval) {
    tuning_.retry = interval;
    return *this;
  }
  /// One-round read fast path on every deployed client: when the phase-1
  /// read quorum unanimously reports the maximum tag, the write-back
  /// round is provably redundant and is skipped (counted under
  /// "reads.fast_path"). Off by default so the classical two-round
  /// message pattern stays byte-for-byte for pinned traffic tests.
  /// (== TuningOptions::read_fast_path.)
  ClusterBuilder& read_fast_path(bool on = true) {
    tuning_.read_fast_path = on;
    return *this;
  }
  /// Periodic server anti-entropy (<SYNC> change-set broadcast). Off by
  /// default; makes reassignment state converge under message loss.
  /// (== TuningOptions::anti_entropy.)
  ClusterBuilder& anti_entropy(TimeNs period) {
    tuning_.anti_entropy = period;
    return *this;
  }
  ClusterBuilder& latency(std::shared_ptr<LatencyModel> model);
  ClusterBuilder& uniform_latency(TimeNs lo, TimeNs hi);
  /// Geo deployment: servers map round-robin onto the profile's sites,
  /// clients sit at `client_site`.
  ClusterBuilder& wan(const WanProfile& profile, std::size_t client_site = 0);

  /// --- server role -------------------------------------------------------
  /// Default: DynamicStorageNode servers (reassignment + weighted ABD).
  /// At most one of adaptive()/reassign_only()/server_factory() may be
  /// chosen; a second choice throws std::logic_error at build-spec time
  /// rather than silently winning.
  /// Attach the monitoring/adaptation loop (AdaptiveNode servers).
  ClusterBuilder& adaptive(AdaptiveParams params);
  /// Reassignment service only (plain ReassignNode servers, clients are
  /// ReassignClients).
  ClusterBuilder& reassign_only() { set_kind(Kind::kReassign); return *this; }
  /// Fully custom servers (consensus reductions, baselines, ...).
  ClusterBuilder& server_factory(ServerFactory factory);

  /// --- clients -----------------------------------------------------------
  ClusterBuilder& clients(std::uint32_t k) { clients_ = k; return *this; }
  ClusterBuilder& client_mode(AbdClient::Mode mode) { mode_ = mode; return *this; }
  /// Clients run a read/write workload instead of waiting for explicit
  /// operations; completion is awaitable via workload_done(). Closed loop
  /// by default; set WorkloadParams::target_ops_per_sec for an open loop
  /// over the pipelined client (plus num_keys > 1 so ops can overlap).
  ClusterBuilder& workload(WorkloadParams params);
  /// Record every workload operation for atomicity checking.
  ClusterBuilder& history(std::shared_ptr<HistoryRecorder> h);

  /// --- elastic resharding --------------------------------------------------
  /// Attaches the load-skew Rebalancer: every `params.period` the
  /// controller compares per-shard served-op counts and migrates the
  /// hottest keys off a shard whose window load exceeds
  /// skew_threshold * mean (see rebalance/rebalancer.h). Requires
  /// shards(s >= 2); the MigrationEngine it drives is deployed on every
  /// multi-shard storage deployment regardless, so Cluster::migrate_key
  /// works without this knob.
  ClusterBuilder& rebalance(RebalanceParams params = {}) {
    rebalance_ = params;
    return *this;
  }

  /// Additional processes outside the server/client sets (e.g. the
  /// consensus-reduction oracle).
  ClusterBuilder& add_process(ProcessId pid, ProcessFactory factory);

  /// Validates, deploys, registers, and starts everything.
  Cluster build();

 private:
  friend class Cluster;
  enum class Kind { kStorage, kAdaptive, kReassign, kCustom };

  void set_kind(Kind k);

  std::uint32_t n_ = 0;
  std::uint32_t shards_ = 1;
  bool has_shards_ = false;
  TimeNs service_time_ = 0;
  std::optional<WeightMap> weights_;
  Runtime runtime_ = Runtime::kSim;
  bool has_runtime_ = false;
  Transport transport_ = Transport::kInProcess;
  std::shared_ptr<LatencyModel> latency_;
  Kind kind_ = Kind::kStorage;
  AdaptiveParams adaptive_params_;
  ServerFactory server_factory_;
  std::uint32_t clients_ = 1;
  AbdClient::Mode mode_ = AbdClient::Mode::kDynamic;
  std::optional<WorkloadParams> workload_;
  std::shared_ptr<HistoryRecorder> history_;
  std::vector<std::pair<ProcessId, ProcessFactory>> extras_;
  /// The flat setters write through into these; build() reads them only.
  TuningOptions tuning_;
  FaultOptions fault_;
  std::optional<RebalanceParams> rebalance_;
};

class Cluster {
 public:
  static ClusterBuilder builder() { return ClusterBuilder(); }

  explicit Cluster(const ClusterBuilder& spec);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- deployment surface --------------------------------------------------
  /// Shard 0's config (== THE config of an unsharded deployment).
  const SystemConfig& config() const { return config_; }
  /// Total deployed servers across every shard.
  std::uint32_t num_servers() const { return shard_map_.total_servers(); }
  std::uint32_t servers_per_shard() const { return config_.n; }
  std::size_t num_clients() const {
    std::lock_guard lock(clients_mu_);
    return clients_.size();
  }
  Runtime runtime() const { return runtime_; }
  Transport transport() const { return transport_; }

  // --- sharding ------------------------------------------------------------
  std::uint32_t num_shards() const { return shard_map_.num_shards(); }
  const ShardMap& shard_map() const { return shard_map_; }
  /// Config of shard `g`; throws std::out_of_range naming offender+range.
  const SystemConfig& shard_config(ShardId g) const {
    return shard_map_.config(g);
  }
  /// Global server ids of shard `g` (validated).
  std::vector<ProcessId> shard_servers(ShardId g) const {
    return shard_map_.servers(g);
  }
  /// Global id of the i-th server of shard `g` (both validated).
  ProcessId server_id(ShardId g, std::uint32_t i) const;
  /// Every deployed server id, shard-major ascending.
  std::vector<ProcessId> all_server_ids() const {
    return shard_map_.all_server_ids();
  }
  /// Per-shard message counters (deployments built with shards(); on the
  /// thread runtime only stable once quiescent, like traffic()).
  const Counters& shard_traffic(ShardId g) const;

  // --- elastic resharding --------------------------------------------------
  /// Linearizable per-key handoff: moves register `key` to shard `to`
  /// through the deployment's MigrationEngine (freeze + final read at the
  /// source, install + ownership flip at the destination, fence lift).
  /// Resolves to true when the key ended up at `to` (moved or already
  /// there), false when a concurrent handoff of the same key refused the
  /// attempt. Requires shards(s >= 2); validates `to`.
  Await<bool> migrate_key(RegisterKey key, ShardId to);
  /// The engine's counter snapshot (thread-safe; shards(s >= 2) only).
  MigrationStats migration_stats() const;
  /// The controller's counter snapshot (deployments built with
  /// rebalance() only).
  RebalanceStats rebalance_stats() const;
  /// White-box access to the engine (chaos drivers post into its
  /// context); throws std::logic_error on single-shard deployments.
  MigrationEngine& migration_engine();
  /// The controller itself (stop() it before quiescing the simulator);
  /// throws without rebalance().
  Rebalancer& rebalancer();

  /// The k-th storage client endpoint.
  ClientHandle client(std::size_t k = 0);

  /// The reassignment endpoint of server `s` (any non-custom deployment).
  ReassignHandle server(ProcessId s);
  /// The reassignment endpoint of shard g's i-th server.
  ReassignHandle server(ShardId g, std::uint32_t i) {
    return server(server_id(g, i));
  }

  /// The k-th reassignment-service client (reassign_only deployments).
  ReassignClientHandle reassign_client(std::size_t k = 0);

  /// Node accessors for white-box inspection (throw when the deployment
  /// was built with a different server role).
  DynamicStorageNode& storage_node(ProcessId s);
  AdaptiveNode& adaptive_node(ProcessId s);
  ReassignNode& reassign_node(ProcessId s);
  /// Custom-factory process registered for `pid` (servers and extras).
  Process& process(ProcessId pid);

  /// The k-th workload client (deployments built with .workload()).
  WorkloadClient& workload(std::size_t k = 0);
  /// Resolves when the k-th workload client finished its operations.
  Await<bool> workload_done(std::size_t k = 0);

  // --- awaitables ----------------------------------------------------------
  /// A fresh unfulfilled Await bound to this deployment's substrate; pair
  /// it with any callback-style completion.
  template <typename T>
  Await<T> make_await() {
    return pump_ ? Await<T>(pump_) : Await<T>();
  }

  /// Runs `fn` in `pid`'s execution context (the only safe place to call
  /// a process's callback-style API on the thread runtime).
  void post(ProcessId pid, std::function<void()> fn);

  // --- scenario injection --------------------------------------------------
  // Every verb validates its target: unknown process/server/shard ids
  // throw std::out_of_range naming the offender and the valid range
  // instead of silently no-opping against a mistyped id.

  /// Crash-stops server or client `pid`.
  void crash(ProcessId pid);
  /// Crash-stops shard g's i-th server.
  void crash(ShardId g, std::uint32_t i) { crash(server_id(g, i)); }
  bool is_crashed(ProcessId pid) const;

  // --- link faults (messages sent while a fault is active are LOST;
  // liveness after healing needs builder retry()/anti_entropy()) ----------
  /// Cuts both directions of the a<->b link.
  void partition(ProcessId a, ProcessId b);
  void heal(ProcessId a, ProcessId b);
  /// Full network split: cuts every link between `side` and the rest of
  /// the deployment (servers AND clients). heal_split is its exact
  /// inverse, enumerating the deployment at heal time (processes added
  /// in between are healed too).
  void partition_split(const std::vector<ProcessId>& side);
  void heal_split(const std::vector<ProcessId>& side);
  /// Cuts `pid` off from every other deployed process (use
  /// env().faults().cut_one_way for asymmetric variants).
  void isolate(ProcessId pid);
  /// Isolates shard g's i-th server.
  void isolate(ShardId g, std::uint32_t i) { isolate(server_id(g, i)); }
  /// Walls off shard `g`: cuts every link between the shard's servers
  /// and everything outside the shard (clients AND other shards), so the
  /// group stalls while the rest of the deployment keeps serving.
  /// heal_shard is its exact inverse (enumerated at heal time).
  void partition_shard(ShardId g);
  void heal_shard(ShardId g);
  /// Message loss / duplication with probability `p`, on one link or as
  /// a network-wide storm. The storm variants cover EVERY link —
  /// including processes deployed while the storm is active (restarted
  /// readers) — and compose with per-link rates by "the stronger wins".
  void drop_link(ProcessId a, ProcessId b, double p);
  void drop_all_links(double p);
  void duplicate_link(ProcessId a, ProcessId b, double p);
  void duplicate_all_links(double p);
  /// Seeded bounded reordering: each message gets an extra delay uniform
  /// in [0, max_extra) with probability p. Deterministic on the
  /// simulator; ignored by the thread runtime (real threads already
  /// reorder).
  void reorder_links(double p, TimeNs max_extra);
  /// Clears every cut, drop/duplicate rate, and the reorder knob.
  void heal_all_links();

  /// All deployed process ids: servers, then clients, then extras.
  std::vector<ProcessId> process_ids() const;

  /// Deploys an additional storage client MID-RUN (a crashed reader
  /// "restarting" as a new process with fresh state) — plain, or driving
  /// a workload recorded into the deployment's history recorder. Returns
  /// the new client's index (thread-safe; storage deployments only).
  std::size_t add_client();
  std::size_t add_client(const WorkloadParams& params);

  /// Reconfigures anti-entropy on every live server mid-run (0 stops it —
  /// chaos drivers do this before quiescing the simulator).
  void set_anti_entropy(TimeNs period);

  /// Multiplies every message delay to/from `pid` (degraded replica).
  void slow(ProcessId pid, double factor);
  void clear_slow(ProcessId pid);
  /// Degrades shard g's i-th server.
  void slow(ShardId g, std::uint32_t i, double factor) {
    slow(server_id(g, i), factor);
  }
  void clear_slow(ShardId g, std::uint32_t i) { clear_slow(server_id(g, i)); }

  /// Swaps the latency model underneath the running deployment (slow()
  /// factors are preserved on top of the new model).
  void set_latency(std::unique_ptr<LatencyModel> model);

  /// Runs `fn` (in server 0's context) after `delay` — for degradation
  /// scripts and staged scenarios.
  void at(TimeNs delay, std::function<void()> fn);

  // --- time ---------------------------------------------------------------
  TimeNs now() const;

  /// Advances the deployment by `d`: simulated time on the simulator,
  /// wall-clock sleep on the thread runtime.
  void run_for(TimeNs d);

  /// Lets in-flight protocol traffic drain (simulator: run every pending
  /// event; threads: a bounded wall-clock grace period).
  void quiesce(TimeNs deadline = seconds(3600));

  /// Message traffic counters. On the thread runtime only stable once the
  /// deployment is quiescent.
  const Counters& traffic() const;

  // --- substrate escape hatches -------------------------------------------
  Env& env();
  const Env& env() const;
  /// Null when the deployment runs on the other substrate.
  SimEnv* sim() { return sim_.get(); }
  ThreadEnv* threads() { return thread_.get(); }
  /// Non-null only for Transport::kSocket deployments.
  SocketEnv* sockets() { return socket_.get(); }

 private:
  friend class ClientHandle;
  friend class ReassignHandle;
  friend class ReassignClientHandle;

  struct ServerSlot {
    std::unique_ptr<Process> process;
    ReassignNode* reassign = nullptr;
    DynamicStorageNode* storage = nullptr;
    AdaptiveNode* adaptive = nullptr;
  };
  struct ClientSlot {
    std::unique_ptr<Process> process;
    ShardRouter* router = nullptr;
    ReassignClient* reassign = nullptr;
    WorkloadClient* workload = nullptr;
    Await<bool> done;
  };

  static ShardMap build_shard_map(const ClusterBuilder& spec);

  ServerSlot& server_slot(ProcessId s);
  ClientSlot& client_slot(std::size_t k);
  std::size_t make_client_slot(const WorkloadParams* wp);
  /// Verb-target validation: `pid` must be a deployed server, client, or
  /// extra process; throws std::out_of_range naming offender + ranges.
  void check_process(ProcessId pid) const;

  Runtime runtime_;
  Transport transport_;
  /// Declared before config_: config_ aliases shard 0's config.
  ShardMap shard_map_;
  SystemConfig config_;
  TimeNs service_time_ = 0;
  ClusterBuilder::Kind kind_;
  AbdClient::Mode mode_ = AbdClient::Mode::kDynamic;
  std::shared_ptr<HistoryRecorder> history_;
  /// Applied to every client slot — including clients added mid-run.
  TuningOptions tuning_;

  // env_ members are declared before the process slots so workers are
  // stopped (dtor body) and envs destroyed only after all processes died.
  std::unique_ptr<SimEnv> sim_;
  std::unique_ptr<ThreadEnv> thread_;
  /// shared_ptr so non-Linux translation units can hold the (incomplete,
  /// #ifdef'd-out) type; only ever non-null on Linux. socket_env_ is the
  /// same object as an Env* for dispatch without the complete type.
  std::shared_ptr<SocketEnv> socket_;
  Env* socket_env_ = nullptr;
  std::shared_ptr<DegradableLatency> degradable_;
  std::shared_ptr<AwaitPump> pump_;

  std::vector<ServerSlot> servers_;
  /// add_client() grows clients_ from scenario threads while accessors
  /// read it, so every access goes through clients_mu_. A deque so
  /// existing slots never move when it grows (handles keep references).
  mutable std::mutex clients_mu_;
  std::deque<ClientSlot> clients_;
  std::map<ProcessId, std::unique_ptr<Process>> extra_;
  /// Declared after the slots they borrow from; the rebalancer_ (which
  /// borrows AbdServer pointers AND the engine) is destroyed first. Both
  /// only run scheduled callbacks, so the dtor's worker stop() already
  /// quiesced them before any member dies.
  std::unique_ptr<MigrationEngine> engine_;
  std::unique_ptr<Rebalancer> rebalancer_;
};

}  // namespace wrs
