// Awaitable completion values for the deployment facade.
//
// Every protocol operation in the library completes through a callback
// (processes are event-driven state machines). Await<T> bridges that
// callback world to straight-line driver code — examples, benches, tests
// — on BOTH runtime substrates:
//
//   * on the deterministic simulator, get() pumps the event loop on the
//     caller's thread until the value is fulfilled (the simulator has no
//     threads of its own);
//   * on the thread runtime, get() blocks on a condition variable and the
//     fulfilling callback runs on a worker thread.
//
// Await is a cheap shared-state handle: copy it into the completion
// callback and fulfill() it there, keep a copy on the caller side and
// get() it. The same driver source therefore runs unmodified on either
// substrate — which runtime is in play is decided by the pump the
// Cluster facade installs, not by the call site.
//
// Composition (for the pipelined client API): awaits chain and fan in
// without blocking one .get() per operation —
//
//   * then(fn) runs fn when the value arrives and yields an Await of
//     fn's result;
//   * when_all(a, b, ...) / when_all(vector) resolve when every input
//     has, to a tuple / vector of the values;
//   * poll() / ready() observe completion without blocking, for
//     open-loop drivers that must not stall their issue clock.
//
// Continuations run wherever fulfill() runs: inline in the simulator's
// event loop, or on the fulfilling worker thread on the thread runtime —
// keep them short and non-blocking, like any protocol callback.
#pragma once

#include <condition_variable>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.h"

namespace wrs {

/// Thrown by Await<T>::get when the value did not arrive in time (the
/// protocol stalled, the deadline was too tight, or the operation's
/// quorum is unreachable).
class AwaitTimeout : public std::runtime_error {
 public:
  AwaitTimeout() : std::runtime_error("wrs::Await: timed out") {}
};

/// How a blocked get() makes progress. The simulator pump runs the event
/// loop until `ready` holds; the thread runtime needs no pump (workers
/// run concurrently) and uses condition-variable blocking instead.
class AwaitPump {
 public:
  virtual ~AwaitPump() = default;

  /// Drives the substrate until `ready()` returns true or `timeout`
  /// elapses; returns the final value of ready().
  virtual bool pump(const std::function<bool()>& ready, TimeNs timeout) = 0;
};

template <typename T>
class Await {
 public:
  /// A pump-less Await blocks on its condition variable (thread runtime).
  Await() : state_(std::make_shared<State>()) {}

  /// An Await with a pump drives the pump from get() (simulator).
  explicit Await(std::shared_ptr<AwaitPump> pump)
      : state_(std::make_shared<State>()), pump_(std::move(pump)) {}

  /// Completion-callback side; the first fulfill wins, later ones are
  /// ignored (operations complete exactly once, but scenario scripts may
  /// race a timeout fulfillment against the real one). Registered
  /// continuations run inline, after the value is published.
  void fulfill(T value) const {
    std::vector<std::function<void(const T&)>> conts;
    {
      std::lock_guard lock(state_->mu);
      if (state_->value.has_value()) return;
      state_->value = std::move(value);
      conts = std::move(state_->continuations);
      state_->continuations.clear();
    }
    state_->cv.notify_all();
    for (auto& c : conts) c(*state_->value);
  }

  bool ready() const {
    std::lock_guard lock(state_->mu);
    return state_->value.has_value();
  }

  /// Non-blocking: the value if it has arrived, nullopt otherwise. Does
  /// not pump the simulator — drive it via Cluster::run_for/quiesce.
  std::optional<T> poll() const {
    std::lock_guard lock(state_->mu);
    return state_->value;
  }

  /// Registers `fn` to run when the value arrives; runs it immediately
  /// (on the caller) when the value is already there. Any number of
  /// continuations may be registered.
  void on_ready(std::function<void(const T&)> fn) const {
    {
      std::lock_guard lock(state_->mu);
      if (!state_->value.has_value()) {
        state_->continuations.push_back(std::move(fn));
        return;
      }
    }
    fn(*state_->value);
  }

  /// Chains a continuation: returns an Await of fn's result, fulfilled
  /// when this value arrives. fn returning void yields Await<bool>
  /// (fulfilled with true) so the end of a chain stays awaitable.
  template <typename F>
  auto then(F fn) const {
    using R = std::invoke_result_t<F, const T&>;
    if constexpr (std::is_void_v<R>) {
      Await<bool> next(pump_);
      on_ready([next, fn = std::move(fn)](const T& v) {
        fn(v);
        next.fulfill(true);
      });
      return next;
    } else {
      Await<R> next(pump_);
      on_ready([next, fn = std::move(fn)](const T& v) {
        next.fulfill(fn(v));
      });
      return next;
    }
  }

  /// Waits up to `timeout`; nullopt if the value never arrived.
  std::optional<T> try_get(TimeNs timeout = seconds(120)) const {
    if (pump_) {
      // Simulator: make progress on the caller's thread. No other thread
      // can fulfill concurrently, so no lock is needed around the pump.
      pump_->pump([this] { return ready(); }, timeout);
      std::lock_guard lock(state_->mu);
      return state_->value;
    }
    std::unique_lock lock(state_->mu);
    state_->cv.wait_for(lock, std::chrono::nanoseconds(timeout),
                        [this] { return state_->value.has_value(); });
    return state_->value;
  }

  /// Waits up to `timeout` and returns the value; throws AwaitTimeout if
  /// it never arrived.
  T get(TimeNs timeout = seconds(120)) const {
    auto v = try_get(timeout);
    if (!v.has_value()) throw AwaitTimeout();
    return *std::move(v);
  }

  /// The substrate pump this Await drives from get() (null on the thread
  /// runtime). Composition helpers propagate it to derived awaits.
  std::shared_ptr<AwaitPump> pump() const { return pump_; }

 private:
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<T> value;
    std::vector<std::function<void(const T&)>> continuations;
  };

  std::shared_ptr<State> state_;
  std::shared_ptr<AwaitPump> pump_;
};

/// Fans in a homogeneous batch: resolves to the vector of all values
/// (in input order) once every part has resolved. The natural partner of
/// ClientHandle::read_batch / write_batch.
template <typename T>
Await<std::vector<T>> when_all(const std::vector<Await<T>>& parts) {
  std::shared_ptr<AwaitPump> pump;
  for (const auto& p : parts) {
    if ((pump = p.pump())) break;
  }
  Await<std::vector<T>> all(pump);
  if (parts.empty()) {
    all.fulfill({});
    return all;
  }
  struct Gather {
    std::mutex mu;
    std::vector<std::optional<T>> slots;
    std::size_t remaining;
  };
  auto g = std::make_shared<Gather>();
  g->slots.resize(parts.size());
  g->remaining = parts.size();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    parts[i].on_ready([g, all, i](const T& v) {
      bool done = false;
      {
        std::lock_guard lock(g->mu);
        g->slots[i] = v;
        done = (--g->remaining == 0);
      }
      if (!done) return;
      std::vector<T> out;
      out.reserve(g->slots.size());
      for (auto& s : g->slots) out.push_back(std::move(*s));
      all.fulfill(std::move(out));
    });
  }
  return all;
}

/// Fans in a heterogeneous set: resolves to the tuple of all values once
/// every part has (e.g. a write's Tag alongside a read's TaggedValue).
template <typename... Ts>
Await<std::tuple<Ts...>> when_all(const Await<Ts>&... parts) {
  static_assert(sizeof...(Ts) > 0, "when_all needs at least one await");
  std::shared_ptr<AwaitPump> pump;
  auto pick = [&pump](const auto& p) {
    if (!pump) pump = p.pump();
  };
  (pick(parts), ...);
  Await<std::tuple<Ts...>> all(pump);
  struct Gather {
    std::mutex mu;
    std::tuple<std::optional<Ts>...> slots;
    std::size_t remaining = sizeof...(Ts);
  };
  auto g = std::make_shared<Gather>();
  [&]<std::size_t... Is>(std::index_sequence<Is...>) {
    auto finish = [g, all] {
      all.fulfill(std::tuple<Ts...>(std::move(*std::get<Is>(g->slots))...));
    };
    (std::get<Is>(std::tie(parts...))
         .on_ready([g, finish](const Ts& v) {
           bool done = false;
           {
             std::lock_guard lock(g->mu);
             std::get<Is>(g->slots) = v;
             done = (--g->remaining == 0);
           }
           if (done) finish();
         }),
     ...);
  }(std::index_sequence_for<Ts...>{});
  return all;
}

}  // namespace wrs
