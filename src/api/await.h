// Awaitable completion values for the deployment facade.
//
// Every protocol operation in the library completes through a callback
// (processes are event-driven state machines). Await<T> bridges that
// callback world to straight-line driver code — examples, benches, tests
// — on BOTH runtime substrates:
//
//   * on the deterministic simulator, get() pumps the event loop on the
//     caller's thread until the value is fulfilled (the simulator has no
//     threads of its own);
//   * on the thread runtime, get() blocks on a condition variable and the
//     fulfilling callback runs on a worker thread.
//
// Await is a cheap shared-state handle: copy it into the completion
// callback and fulfill() it there, keep a copy on the caller side and
// get() it. The same driver source therefore runs unmodified on either
// substrate — which runtime is in play is decided by the pump the
// Cluster facade installs, not by the call site.
#pragma once

#include <condition_variable>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "common/types.h"

namespace wrs {

/// Thrown by Await<T>::get when the value did not arrive in time (the
/// protocol stalled, the deadline was too tight, or the operation's
/// quorum is unreachable).
class AwaitTimeout : public std::runtime_error {
 public:
  AwaitTimeout() : std::runtime_error("wrs::Await: timed out") {}
};

/// How a blocked get() makes progress. The simulator pump runs the event
/// loop until `ready` holds; the thread runtime needs no pump (workers
/// run concurrently) and uses condition-variable blocking instead.
class AwaitPump {
 public:
  virtual ~AwaitPump() = default;

  /// Drives the substrate until `ready()` returns true or `timeout`
  /// elapses; returns the final value of ready().
  virtual bool pump(const std::function<bool()>& ready, TimeNs timeout) = 0;
};

template <typename T>
class Await {
 public:
  /// A pump-less Await blocks on its condition variable (thread runtime).
  Await() : state_(std::make_shared<State>()) {}

  /// An Await with a pump drives the pump from get() (simulator).
  explicit Await(std::shared_ptr<AwaitPump> pump)
      : state_(std::make_shared<State>()), pump_(std::move(pump)) {}

  /// Completion-callback side; the first fulfill wins, later ones are
  /// ignored (operations complete exactly once, but scenario scripts may
  /// race a timeout fulfillment against the real one).
  void fulfill(T value) const {
    {
      std::lock_guard lock(state_->mu);
      if (state_->value.has_value()) return;
      state_->value = std::move(value);
    }
    state_->cv.notify_all();
  }

  bool ready() const {
    std::lock_guard lock(state_->mu);
    return state_->value.has_value();
  }

  /// Waits up to `timeout`; nullopt if the value never arrived.
  std::optional<T> try_get(TimeNs timeout = seconds(120)) const {
    if (pump_) {
      // Simulator: make progress on the caller's thread. No other thread
      // can fulfill concurrently, so no lock is needed around the pump.
      pump_->pump([this] { return ready(); }, timeout);
      std::lock_guard lock(state_->mu);
      return state_->value;
    }
    std::unique_lock lock(state_->mu);
    state_->cv.wait_for(lock, std::chrono::nanoseconds(timeout),
                        [this] { return state_->value.has_value(); });
    return state_->value;
  }

  /// Waits up to `timeout` and returns the value; throws AwaitTimeout if
  /// it never arrived.
  T get(TimeNs timeout = seconds(120)) const {
    auto v = try_get(timeout);
    if (!v.has_value()) throw AwaitTimeout();
    return *std::move(v);
  }

 private:
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<T> value;
  };

  std::shared_ptr<State> state_;
  std::shared_ptr<AwaitPump> pump_;
};

}  // namespace wrs
