// Closed-loop read/write workload clients for the storage benches.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/rng.h"
#include "core/config.h"
#include "storage/abd_client.h"
#include "storage/history.h"

namespace wrs {

struct WorkloadParams {
  std::size_t num_ops = 100;      // operations per client
  double read_ratio = 0.5;        // fraction of reads
  TimeNs think_time = ms(5);      // delay between operations
  std::size_t value_size = 64;    // bytes per written value
  std::uint64_t seed = 42;
};

/// A client process running a closed loop of reads/writes against the
/// register, recording per-op latency and the global operation history.
class ClosedLoopClient : public Process {
 public:
  ClosedLoopClient(Env& env, ProcessId self, const SystemConfig& config,
                   AbdClient::Mode mode, WorkloadParams params,
                   std::shared_ptr<HistoryRecorder> history = nullptr)
      : env_(env),
        self_(self),
        client_(env, self, config, mode),
        params_(params),
        rng_(params.seed ^ (std::uint64_t{self} << 20)),
        history_(std::move(history)) {}

  void on_start() override { next_op(); }

  void on_message(ProcessId from, const Message& msg) override {
    client_.handle(from, msg);
  }

  bool done() const { return completed_ >= params_.num_ops; }
  std::size_t completed() const { return completed_; }

  const Histogram& read_latency() const { return read_latency_; }
  const Histogram& write_latency() const { return write_latency_; }
  AbdClient& abd() { return client_; }

  /// Fires once when the client's whole run is finished.
  void set_on_done(std::function<void()> cb) { on_done_ = std::move(cb); }

 private:
  void next_op() {
    if (done()) {
      if (on_done_) on_done_();
      return;
    }
    bool is_read = rng_.uniform() < params_.read_ratio;
    TimeNs start = env_.now();
    if (is_read) {
      std::size_t token =
          history_ ? history_->begin(OpRecord::Kind::kRead, self_, start) : 0;
      client_.read([this, start, token](const TaggedValue& tv) {
        read_latency_.add_time(env_.now() - start);
        if (history_) history_->end_read(token, env_.now(), tv);
        finish_op();
      });
    } else {
      Value v = make_value();
      std::size_t token =
          history_ ? history_->begin(OpRecord::Kind::kWrite, self_, start)
                   : 0;
      client_.write(v, [this, start, token, v](const Tag& tag) {
        write_latency_.add_time(env_.now() - start);
        if (history_) history_->end_write(token, env_.now(), tag, v);
        finish_op();
      });
    }
  }

  void finish_op() {
    ++completed_;
    env_.schedule(self_, params_.think_time, [this] { next_op(); });
  }

  Value make_value() {
    // Unique value per (client, op): required by the atomicity checker.
    std::string v = process_name(self_) + "#" + std::to_string(completed_);
    if (v.size() < params_.value_size) {
      v.resize(params_.value_size, 'x');
    }
    return v;
  }

  Env& env_;
  ProcessId self_;
  AbdClient client_;
  WorkloadParams params_;
  Rng rng_;
  std::shared_ptr<HistoryRecorder> history_;
  std::size_t completed_ = 0;
  Histogram read_latency_;
  Histogram write_latency_;
  std::function<void()> on_done_;
};

}  // namespace wrs
