// Read/write workload clients for the storage benches: a classic closed
// loop (one op at a time, think time between ops) and an open loop
// (arrivals at a fixed target rate, pipelined over the multiplexed
// AbdClient up to a bounded in-flight window). Open-loop arrivals run on
// a fixed intended-start clock and every operation additionally records
// coordinated-omission-corrected latency from its intended start (see
// corrected_op_latency()).
//
// Every workload runs over a ShardRouter, so the same client drives the
// paper's single group (a one-shard map — zero routing overhead, the
// inner AbdClient is the whole data path) or a sharded deployment (ops
// route by key; latency and completions are additionally tracked per
// shard). Key popularity is uniform by default or Zipfian
// (WorkloadParams::zipf_theta) for skewed-load experiments.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "core/config.h"
#include "shard/shard_router.h"
#include "storage/history.h"

namespace wrs {

struct WorkloadParams {
  std::size_t num_ops = 100;      // operations per client
  double read_ratio = 0.5;        // fraction of reads
  TimeNs think_time = ms(5);      // closed loop: delay between operations
  std::size_t value_size = 64;    // bytes per written value
  std::uint64_t seed = 42;
  /// Keys the workload spreads over, picked per op: 1 targets the
  /// paper's single register (key ""); k > 1 uses "k0".."k<k-1>".
  /// Pipelining only overlaps ops on DISTINCT keys (the client serializes
  /// same-key ops), so open-loop runs want num_keys > 1.
  std::size_t num_keys = 1;
  /// 0 picks keys uniformly. > 0 picks them from a Zipfian popularity
  /// distribution with skew theta (rank r drawn with probability
  /// proportional to 1/(r+1)^theta; key "k0" is the hottest). Seeded and
  /// deterministic like the rest of the workload.
  double zipf_theta = 0;
  /// > 0 switches the client to OPEN-LOOP mode: one operation arrives
  /// every 1/target_ops_per_sec (fixed clock, independent of completions)
  /// and rides the pipelined client. 0 keeps the closed loop.
  double target_ops_per_sec = 0;
  /// Open loop only: arrivals finding this many ops already in flight are
  /// shed (counted, not executed) so a stalled quorum cannot queue
  /// unbounded work.
  std::size_t max_in_flight = 64;
  /// > 0 mixes a cross-shard atomic snapshot (ShardRouter::snapshot)
  /// into the stream after every N completed read/write ops. Snapshots
  /// ride alongside the op budget (not counted in num_ops) over a
  /// deterministic sample of up to `snapshot_keys` distinct keys, and
  /// are recorded into the history (when attached) for the cross-key
  /// cut checks. 0 (the default) issues none.
  std::size_t snapshot_every_ops = 0;
  /// Distinct keys per snapshot (clamped to num_keys).
  std::size_t snapshot_keys = 4;
};

/// A client process generating read/write load against the register(s),
/// recording per-op latency, throughput, and the operation history.
/// Closed loop: issue → await → think → issue. Open loop: issue on a
/// fixed arrival clock, many ops in flight (WorkloadParams above).
class WorkloadClient : public Process {
 public:
  /// Single-group client (the paper's deployment).
  WorkloadClient(Env& env, ProcessId self, const SystemConfig& config,
                 AbdClient::Mode mode, WorkloadParams params,
                 std::shared_ptr<HistoryRecorder> history = nullptr)
      : WorkloadClient(env, self, ShardMap::single(config), mode,
                       std::move(params), std::move(history)) {}

  /// Sharded client: operations route by key over `map`.
  WorkloadClient(Env& env, ProcessId self, ShardMap map,
                 AbdClient::Mode mode, WorkloadParams params,
                 std::shared_ptr<HistoryRecorder> history = nullptr)
      : env_(env),
        self_(self),
        router_(env, self, std::move(map), mode),
        params_(params),
        rng_(params.seed ^ (std::uint64_t{self} << 20)),
        history_(std::move(history)),
        shard_completed_(router_.num_shards(), 0),
        shard_latency_(router_.num_shards()) {
    if (params_.zipf_theta > 0 && params_.num_keys > 1) {
      // Zipfian CDF over key ranks, built once: cheap for the key counts
      // workloads use and keeps sampling a single uniform draw.
      zipf_cdf_.reserve(params_.num_keys);
      double sum = 0;
      for (std::size_t r = 0; r < params_.num_keys; ++r) {
        sum += 1.0 / std::pow(static_cast<double>(r + 1), params_.zipf_theta);
        zipf_cdf_.push_back(sum);
      }
      for (double& v : zipf_cdf_) v /= sum;
    }
  }

  void on_start() override {
    started_at_ = env_.now();
    next_intended_ = started_at_;
    if (!open_loop()) {
      next_op();
    } else if (params_.num_ops == 0) {
      finish();  // degenerate run: no arrivals will ever fire
    } else {
      schedule_arrival();
    }
  }

  void on_message(ProcessId from, const Message& msg) override {
    router_.handle(from, msg);
  }

  bool open_loop() const { return params_.target_ops_per_sec > 0; }
  bool done() const { return finished_; }
  std::size_t completed() const { return completed_; }
  /// Open loop: arrivals shed because the in-flight window was full.
  std::size_t shed() const { return shed_; }
  /// Snapshots issued / resolved (params_.snapshot_every_ops > 0 only).
  std::size_t snapshots_issued() const { return snapshots_issued_; }
  std::size_t snapshots_done() const { return snapshots_done_; }
  /// Total collect rounds / fenced-fallback cuts across the resolved
  /// snapshots (a quiet cut is 2 rounds; more means restarted collects).
  std::uint64_t snapshot_rounds() const { return snapshot_rounds_; }
  std::size_t snapshot_fallbacks() const { return snapshot_fallbacks_; }
  const Histogram& snapshot_latency() const { return snapshot_latency_; }

  const Histogram& read_latency() const { return read_latency_; }
  const Histogram& write_latency() const { return write_latency_; }
  /// All operations combined (the open-loop p50/p95/p99 source).
  const Histogram& op_latency() const { return op_latency_; }
  /// Coordinated-omission-corrected latency: every operation measured
  /// from its INTENDED start — in open-loop mode the tick of the fixed
  /// arrival clock (started_at + k/rate, never re-anchored to when the
  /// handler actually ran), in closed-loop mode the issue time (intended
  /// == actual there). A lagging client therefore charges its own
  /// scheduling delay to the operation instead of silently omitting it —
  /// on the thread runtime under load these percentiles run HIGHER than
  /// op_latency(); on the simulator arrivals fire exactly on schedule
  /// and the two match. Shed arrivals never execute and stay excluded
  /// (reported separately via shed()).
  const Histogram& corrected_op_latency() const { return corrected_latency_; }

  // --- per-shard metrics ---------------------------------------------------
  std::uint32_t num_shards() const { return router_.num_shards(); }
  /// Completed operations routed to shard `g`.
  std::size_t shard_completed(ShardId g) const {
    return shard_completed_.at(g);
  }
  /// Latency of the operations routed to shard `g`.
  const Histogram& shard_latency(ShardId g) const {
    return shard_latency_.at(g);
  }

  /// Completed ops per second over the run (meaningful once done()).
  double achieved_ops_per_sec() const {
    TimeNs end = finished_ ? finished_at_ : env_.now();
    if (end <= started_at_) return 0;
    return static_cast<double>(completed_) * 1e9 /
           static_cast<double>(end - started_at_);
  }

  /// High-water mark of concurrently STARTED operations (same-key queued
  /// ops excluded) — proves the open loop actually pipelined.
  std::size_t max_in_flight_seen() const { return router_.max_in_flight(); }

  /// The raw single-group client (throws on sharded deployments).
  AbdClient& abd() { return router_.only_client(); }
  /// The routing layer (always available; == abd()'s shard on 1 shard).
  ShardRouter& router() { return router_; }

  /// Fires once when the client's whole run is finished.
  void set_on_done(std::function<void()> cb) { on_done_ = std::move(cb); }

 private:
  // --- closed loop ---------------------------------------------------------
  void next_op() {
    if (issued_ >= params_.num_ops) {
      // maybe_finish, not finish: a mixed-in snapshot may still be in
      // flight alongside the closed loop's last op.
      maybe_finish();
      return;
    }
    ++issued_;
    issue_one(/*intended=*/env_.now());
  }

  void after_closed_op() {
    env_.schedule(self_, params_.think_time, [this] { next_op(); });
  }

  // --- open loop -----------------------------------------------------------
  void schedule_arrival() {
    // The arrival clock is FIXED: tick k fires at started_at + k*period
    // regardless of when earlier handlers ran, so a lagging client never
    // silently stretches the offered inter-arrival gaps (the classic
    // coordinated-omission distortion). On the simulator handlers run
    // exactly on schedule and the delay is exactly one period.
    auto period =
        static_cast<TimeNs>(1e9 / params_.target_ops_per_sec);
    next_intended_ += period;
    TimeNs now = env_.now();
    TimeNs delay = next_intended_ > now ? next_intended_ - now : 0;
    env_.schedule(self_, delay, [this] { on_arrival(); });
  }

  void on_arrival() {
    // Invariant: an arrival is only ever scheduled while
    // issued_ + shed_ < num_ops (on_start handles num_ops == 0).
    if (in_flight_ >= params_.max_in_flight) {
      ++shed_;
    } else {
      ++issued_;
      issue_one(/*intended=*/next_intended_);
    }
    if (issued_ + shed_ < params_.num_ops) {
      schedule_arrival();
    } else {
      maybe_finish();
    }
  }

  // --- shared --------------------------------------------------------------
  /// `intended` is the operation's intended start (its arrival-clock
  /// tick); closed-loop callers pass the actual issue time.
  void issue_one(TimeNs intended) {
    bool is_read = rng_.uniform() < params_.read_ratio;
    RegisterKey key = pick_key();
    ShardId g = router_.shard_of(key);
    TimeNs start = env_.now();
    ++in_flight_;
    if (is_read) {
      std::size_t token =
          history_
              ? history_->begin(OpRecord::Kind::kRead, self_, start, key)
              : 0;
      router_.read(key,
                   [this, start, intended, token, g](const TaggedValue& tv) {
        record_latency(read_latency_, start, intended, g);
        if (history_) history_->end_read(token, env_.now(), tv);
        op_completed(g);
      });
    } else {
      Value v = make_value();
      std::size_t token =
          history_
              ? history_->begin(OpRecord::Kind::kWrite, self_, start, key)
              : 0;
      router_.write(key, v,
                    [this, start, intended, token, v, g](const Tag& tag) {
        record_latency(write_latency_, start, intended, g);
        if (history_) history_->end_write(token, env_.now(), tag, v);
        op_completed(g);
      });
    }
  }

  void record_latency(Histogram& kind_hist, TimeNs start, TimeNs intended,
                      ShardId g) {
    TimeNs elapsed = env_.now() - start;
    kind_hist.add_time(elapsed);
    op_latency_.add_time(elapsed);
    corrected_latency_.add_time(env_.now() - intended);
    shard_latency_[g].add_time(elapsed);
  }

  void op_completed(ShardId g) {
    ++completed_;
    ++shard_completed_[g];
    --in_flight_;
    if (params_.snapshot_every_ops > 0 &&
        ++ops_since_snapshot_ >= params_.snapshot_every_ops) {
      ops_since_snapshot_ = 0;
      issue_snapshot();
    }
    if (open_loop()) {
      maybe_finish();
    } else {
      after_closed_op();
    }
  }

  void issue_snapshot() {
    // Deterministic sample of distinct keys from the workload's own key
    // picker (so a Zipfian run snapshots hot keys more often). Bounded
    // draw attempts: a badly skewed distribution falls back to filling
    // with the first unused ranks.
    std::size_t want = std::min<std::size_t>(
        std::max<std::size_t>(params_.snapshot_keys, 1),
        std::max<std::size_t>(params_.num_keys, 1));
    std::set<RegisterKey> uniq;
    for (int attempt = 0; attempt < 64 && uniq.size() < want; ++attempt) {
      uniq.insert(pick_key());
    }
    for (std::size_t r = 0; uniq.size() < want && r < params_.num_keys; ++r) {
      RegisterKey key = "k";
      key += std::to_string(r);
      uniq.insert(std::move(key));
    }
    std::vector<RegisterKey> keys(uniq.begin(), uniq.end());
    TimeNs start = env_.now();
    std::size_t token =
        history_ ? history_->begin_snapshot(self_, start) : 0;
    ++snapshots_issued_;
    ++in_flight_;  // holds finish() until the cut resolves
    router_.snapshot(
        std::move(keys),
        [this, token, start](const ShardRouter::SnapshotResult& r) {
          if (history_) history_->end_snapshot(token, env_.now(), r.cut);
          ++snapshots_done_;
          snapshot_rounds_ += r.rounds;
          if (r.used_fallback) ++snapshot_fallbacks_;
          snapshot_latency_.add_time(env_.now() - start);
          --in_flight_;
          maybe_finish();
        });
  }

  void maybe_finish() {
    if (issued_ + shed_ >= params_.num_ops && in_flight_ == 0) finish();
  }

  void finish() {
    if (finished_) return;
    finished_ = true;
    finished_at_ = env_.now();
    if (on_done_) on_done_();
  }

  RegisterKey pick_key() {
    if (params_.num_keys <= 1) return RegisterKey{};
    std::size_t idx;
    if (!zipf_cdf_.empty()) {
      double u = rng_.uniform();
      idx = static_cast<std::size_t>(
          std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u) -
          zipf_cdf_.begin());
      if (idx >= params_.num_keys) idx = params_.num_keys - 1;
    } else {
      idx = rng_.below(params_.num_keys);
    }
    RegisterKey key = "k";
    key += std::to_string(idx);
    return key;
  }

  Value make_value() {
    // Unique value per (client, op): required by the atomicity checker.
    std::string v = process_name(self_);
    v += '#';
    v += std::to_string(issued_);
    if (v.size() < params_.value_size) {
      v.resize(params_.value_size, 'x');
    }
    return v;
  }

  Env& env_;
  ProcessId self_;
  ShardRouter router_;
  WorkloadParams params_;
  Rng rng_;
  std::shared_ptr<HistoryRecorder> history_;
  std::vector<double> zipf_cdf_;  // empty = uniform keys
  std::size_t issued_ = 0;
  std::size_t completed_ = 0;
  std::size_t shed_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t ops_since_snapshot_ = 0;
  std::size_t snapshots_issued_ = 0;
  std::size_t snapshots_done_ = 0;
  std::uint64_t snapshot_rounds_ = 0;
  std::size_t snapshot_fallbacks_ = 0;
  Histogram snapshot_latency_;
  bool finished_ = false;
  TimeNs started_at_ = 0;
  TimeNs finished_at_ = 0;
  TimeNs next_intended_ = 0;  // open loop: the next arrival-clock tick
  Histogram read_latency_;
  Histogram write_latency_;
  Histogram op_latency_;
  Histogram corrected_latency_;
  std::vector<std::size_t> shard_completed_;
  std::vector<Histogram> shard_latency_;
  std::function<void()> on_done_;
};

/// Historical name from when the closed loop was the only mode; kept so
/// old drivers compile, deprecated since the class has driven every loop
/// shape (closed, open, snapshot-mixed) for a while. Use WorkloadClient.
using ClosedLoopClient [[deprecated("use WorkloadClient")]] = WorkloadClient;

}  // namespace wrs
