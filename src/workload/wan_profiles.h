// Geo-distribution profiles for the latency benches.
//
// The paper motivates weighted quorums with heterogeneous WAN replica
// performance (WHEAT [20] / AWARE [10] style deployments). We model five
// cloud regions with a public-cloud-like RTT matrix (values in ms,
// representative of Virginia / Ireland / Sao Paulo / Sydney / Tokyo
// inter-region pings; absolute values are not claims — only their
// heterogeneity matters).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace wrs {

struct WanProfile {
  std::string name;
  std::vector<std::string> sites;
  std::vector<std::vector<double>> rtt_ms;
};

/// Five heterogeneous regions.
inline WanProfile wan5_profile() {
  WanProfile p;
  p.name = "wan5";
  p.sites = {"virginia", "ireland", "saopaulo", "sydney", "tokyo"};
  p.rtt_ms = {
      // VA     IE     SP     SY     TK
      {1.0, 75.0, 120.0, 200.0, 160.0},   // virginia
      {75.0, 1.0, 180.0, 280.0, 210.0},   // ireland
      {120.0, 180.0, 1.0, 310.0, 270.0},  // saopaulo
      {200.0, 280.0, 310.0, 1.0, 105.0},  // sydney
      {160.0, 210.0, 270.0, 105.0, 1.0},  // tokyo
  };
  return p;
}

/// A mildly heterogeneous continental profile (same-continent regions).
inline WanProfile continental_profile() {
  WanProfile p;
  p.name = "continental";
  p.sites = {"fra", "lon", "par", "mad", "mil"};
  p.rtt_ms = {
      {1.0, 15.0, 10.0, 28.0, 14.0},
      {15.0, 1.0, 8.0, 25.0, 21.0},
      {10.0, 8.0, 1.0, 18.0, 15.0},
      {28.0, 25.0, 18.0, 1.0, 22.0},
      {14.0, 21.0, 15.0, 22.0, 1.0},
  };
  return p;
}

/// A homogeneous single-datacenter profile (control group: weighted
/// quorums should win nothing here).
inline WanProfile lan_profile() {
  WanProfile p;
  p.name = "lan";
  p.sites = {"rack1", "rack2", "rack3", "rack4", "rack5"};
  p.rtt_ms.assign(5, std::vector<double>(5, 0.5));
  for (std::size_t i = 0; i < 5; ++i) p.rtt_ms[i][i] = 0.2;
  return p;
}

/// Maps servers round-robin onto sites and every client to `client_site`.
inline std::function<std::size_t(ProcessId)> site_mapper(
    std::size_t n_sites, std::size_t client_site) {
  return [n_sites, client_site](ProcessId pid) -> std::size_t {
    if (is_server(pid)) return static_cast<std::size_t>(pid) % n_sites;
    return client_site;
  };
}

}  // namespace wrs
